(* Tests for the discrete-event substrate and the asynchronous
   message-passing initiative protocol. *)

module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Pqueue = Stratify_des.Pqueue
module Engine = Stratify_des.Engine
module Series = Stratify_stats.Series
open Stratify_core

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_ordering () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  List.iter (fun (pr, v) -> Pqueue.push q ~priority:pr v) [ (3., "c"); (1., "a"); (2., "b") ];
  Alcotest.(check int) "size" 3 (Pqueue.size q);
  Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (1., "a")) (Pqueue.peek q);
  Alcotest.(check (option (pair (float 0.) string))) "pop a" (Some (1., "a")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.) string))) "pop b" (Some (2., "b")) (Pqueue.pop q);
  Alcotest.(check (option (pair (float 0.) string))) "pop c" (Some (3., "c")) (Pqueue.pop q);
  Alcotest.(check bool) "drained" true (Pqueue.pop q = None)

let test_pqueue_stable_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~priority:7. v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> -1) in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4 ] order

let test_pqueue_random_heap_property () =
  let rng = Helpers.rng () in
  let q = Pqueue.create () in
  let reference = ref [] in
  for _ = 1 to 2000 do
    let pr = Rng.unit_float rng in
    Pqueue.push q ~priority:pr ();
    reference := pr :: !reference
  done;
  let sorted = List.sort compare !reference in
  List.iter
    (fun expected ->
      match Pqueue.pop q with
      | Some (pr, ()) -> Helpers.check_close "heap order" expected pr
      | None -> Alcotest.fail "queue exhausted early")
    sorted;
  Alcotest.(check bool) "empty at end" true (Pqueue.is_empty q)

let test_pqueue_interleaved () =
  let q = Pqueue.create () in
  Pqueue.push q ~priority:5. 5;
  Pqueue.push q ~priority:1. 1;
  Alcotest.(check (option (pair (float 0.) int))) "pop 1" (Some (1., 1)) (Pqueue.pop q);
  Pqueue.push q ~priority:0.5 0;
  Alcotest.(check (option (pair (float 0.) int))) "pop 0" (Some (0.5, 0)) (Pqueue.pop q);
  Pqueue.clear q;
  Alcotest.(check bool) "cleared" true (Pqueue.is_empty q)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let test_engine_clock_and_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2. (fun e -> log := ("b", Engine.now e) :: !log);
  Engine.schedule e ~delay:1. (fun e -> log := ("a", Engine.now e) :: !log);
  Engine.schedule e ~delay:3. (fun e -> log := ("c", Engine.now e) :: !log);
  Engine.run_until e ~time:2.5;
  Alcotest.(check (list (pair string (float 1e-9)))) "two fired" [ ("a", 1.); ("b", 2.) ]
    (List.rev !log);
  Helpers.check_close "clock advanced" 2.5 (Engine.now e);
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Alcotest.(check bool) "drain rest" true (Engine.drain e);
  Alcotest.(check (list string)) "all fired" [ "a"; "b"; "c" ] (List.rev_map fst !log)

let test_engine_cascading_events () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick depth engine =
    incr count;
    if depth > 0 then Engine.schedule engine ~delay:1. (tick (depth - 1))
  in
  Engine.schedule e ~delay:0. (tick 9);
  Alcotest.(check bool) "drained" true (Engine.drain e);
  Alcotest.(check int) "chain length" 10 !count;
  Helpers.check_close "time advanced" 9. (Engine.now e)

let test_engine_runaway_guard () =
  let e = Engine.create () in
  let rec forever engine = Engine.schedule engine ~delay:1. forever in
  Engine.schedule e ~delay:0. forever;
  Alcotest.(check bool) "budget stops it" false (Engine.drain ~max_events:1000 e)

let test_engine_guards () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay -1")
    (fun () -> Engine.schedule e ~delay:(-1.) (fun _ -> ()));
  Engine.run_until e ~time:5.;
  Alcotest.check_raises "past"
    (Invalid_argument "Engine.schedule_at: time 1 is in the past (now 5)")
    (fun () -> Engine.schedule_at e ~time:1. (fun _ -> ()))

(* ------------------------------------------------------------------ *)
(* Async dynamics                                                      *)

let async_world ?(n = 150) ?(d = 10.) ?(seed = 42) ?(loss = 0.) ~latency () =
  let rng = Rng.create seed in
  let graph = Gen.gnd rng ~n ~d in
  let inst = Instance.create ~graph ~b:(Array.make n 1) () in
  let stable = Greedy.stable_config inst in
  let a = Async_dynamics.create inst rng { Async_dynamics.latency; initiative_rate = 1.; loss } in
  (inst, stable, a)

let check_drains msg a =
  Alcotest.(check bool) msg true (Async_dynamics.quiesce a = Async_dynamics.Drained)

let test_async_low_latency_converges () =
  let _, stable, a = async_world ~latency:0.05 () in
  Async_dynamics.run a ~horizon:120.;
  check_drains "drains" a;
  let final = Async_dynamics.mutual_config a in
  Alcotest.(check int) "no inconsistency" 0 (Async_dynamics.inconsistency_count a);
  Helpers.check_close "reaches the stable configuration" 0.
    (Disorder.disorder final ~stable);
  Alcotest.(check bool) "stable" true (Blocking.is_stable final)

let test_async_latency_degrades_gracefully () =
  let disorder_at latency =
    let _, stable, a = async_world ~latency () in
    Async_dynamics.run a ~horizon:100.;
    ignore (Async_dynamics.quiesce a);
    Disorder.disorder (Async_dynamics.mutual_config a) ~stable
  in
  let fast = disorder_at 0.05 and slow = disorder_at 5. in
  Alcotest.(check bool)
    (Printf.sprintf "latency hurts: %.4f < %.4f" fast slow)
    true (fast < slow);
  Alcotest.(check bool) "but bounded" true (slow < 0.6)

let test_async_eventual_consistency () =
  (* Even at brutal latency, quiescing leaves at most a handful of
     one-sided listings (keepalive audits repair the rest while live). *)
  let _, _, a = async_world ~latency:5. ~seed:7 () in
  Async_dynamics.run a ~horizon:150.;
  check_drains "drains" a;
  let incons = Async_dynamics.inconsistency_count a in
  Alcotest.(check bool) (Printf.sprintf "inconsistency %d <= 4" incons) true (incons <= 4)

let test_async_capacity_respected () =
  (* Local capacity invariant holds at every sampled instant. *)
  let inst, _, a = async_world ~latency:1. ~seed:9 () in
  for _ = 1 to 20 do
    Async_dynamics.run a ~horizon:5.;
    let config = Async_dynamics.mutual_config a in
    for p = 0 to Instance.n inst - 1 do
      Alcotest.(check bool) "degree <= b" true (Config.degree config p <= Instance.slots inst p)
    done
  done

let test_async_trajectory () =
  let _, stable, a = async_world ~latency:0.1 ~seed:11 () in
  let traj = Async_dynamics.disorder_trajectory a ~stable ~horizon:250. ~samples:25 in
  Alcotest.(check int) "26 points" 26 (Series.length traj);
  Alcotest.(check bool) "starts high" true (snd traj.Series.points.(0) > 0.5);
  (* Random-strategy initiatives have a slow convergence tail; near-zero
     suffices here (exact convergence is covered by the quiesced test). *)
  Alcotest.(check bool)
    (Printf.sprintf "near stable (%.4f)" (Series.final_value traj))
    true
    (Series.final_value traj < 0.02);
  Alcotest.(check bool) "messages flowed" true (Async_dynamics.messages_sent a > 1000)

let test_async_message_loss () =
  (* Failure injection: 15% of messages silently vanish.  Keepalive audits
     keep the protocol safe - it still converges close to the stable
     configuration, with losses actually recorded. *)
  let _, stable, a = async_world ~latency:0.1 ~loss:0.15 ~seed:13 () in
  Async_dynamics.run a ~horizon:250.;
  check_drains "drains" a;
  Alcotest.(check bool) "losses happened" true (Async_dynamics.messages_lost a > 100);
  let disorder = Disorder.disorder (Async_dynamics.mutual_config a) ~stable in
  Alcotest.(check bool)
    (Printf.sprintf "near stable despite loss (%.4f)" disorder)
    true (disorder < 0.05);
  Alcotest.(check bool) "few residual inconsistencies" true
    (Async_dynamics.inconsistency_count a <= 6)

let test_async_determinism () =
  let run () =
    let _, stable, a = async_world ~latency:0.5 ~seed:21 () in
    Async_dynamics.run a ~horizon:50.;
    (Async_dynamics.messages_sent a, Disorder.disorder (Async_dynamics.mutual_config a) ~stable)
  in
  Alcotest.(check bool) "bit-for-bit deterministic" true (run () = run ())

let test_async_guards () =
  let rng = Rng.create 1 in
  let inst = Instance.create ~graph:(Gen.path 3) ~b:[| 1; 1; 1 |] () in
  Alcotest.check_raises "negative latency" (Invalid_argument "Async_dynamics: negative latency")
    (fun () ->
      ignore (Async_dynamics.create inst rng { Async_dynamics.latency = -1.; initiative_rate = 1.; loss = 0. }));
  Alcotest.check_raises "bad rate" (Invalid_argument "Async_dynamics: rate must be positive")
    (fun () ->
      ignore (Async_dynamics.create inst rng { Async_dynamics.latency = 0.1; initiative_rate = 0.; loss = 0. }));
  Alcotest.check_raises "bad loss" (Invalid_argument "Async_dynamics: loss must be in [0,1)")
    (fun () ->
      ignore (Async_dynamics.create inst rng { Async_dynamics.latency = 0.1; initiative_rate = 1.; loss = 1. }))

let suite =
  [
    Alcotest.test_case "pqueue ordering" `Quick test_pqueue_ordering;
    Alcotest.test_case "pqueue stable ties" `Quick test_pqueue_stable_ties;
    Alcotest.test_case "pqueue heap property (random)" `Quick test_pqueue_random_heap_property;
    Alcotest.test_case "pqueue interleaved" `Quick test_pqueue_interleaved;
    Alcotest.test_case "engine clock and order" `Quick test_engine_clock_and_order;
    Alcotest.test_case "engine cascading events" `Quick test_engine_cascading_events;
    Alcotest.test_case "engine runaway guard" `Quick test_engine_runaway_guard;
    Alcotest.test_case "engine guards" `Quick test_engine_guards;
    Alcotest.test_case "async: low latency converges" `Slow test_async_low_latency_converges;
    Alcotest.test_case "async: latency degrades gracefully" `Slow
      test_async_latency_degrades_gracefully;
    Alcotest.test_case "async: eventual consistency" `Slow test_async_eventual_consistency;
    Alcotest.test_case "async: capacity respected" `Slow test_async_capacity_respected;
    Alcotest.test_case "async: disorder trajectory" `Slow test_async_trajectory;
    Alcotest.test_case "async: survives message loss" `Slow test_async_message_loss;
    Alcotest.test_case "async: deterministic per seed" `Slow test_async_determinism;
    Alcotest.test_case "async: guards" `Quick test_async_guards;
  ]
