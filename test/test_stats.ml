module Online = Stratify_stats.Online
module Summary = Stratify_stats.Summary
module Histogram = Stratify_stats.Histogram
module Empirical = Stratify_stats.Empirical
module Discrete = Stratify_stats.Discrete
module Series = Stratify_stats.Series
module Table = Stratify_stats.Table

let test_online_basic () =
  let acc = Online.create () in
  Alcotest.(check int) "empty count" 0 (Online.count acc);
  Helpers.check_close "empty mean" 0. (Online.mean acc);
  Online.add_many acc [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |];
  Helpers.check_close "mean" 5. (Online.mean acc);
  Helpers.check_close "variance" (32. /. 7.) (Online.variance acc);
  Helpers.check_close "min" 2. (Online.min_value acc);
  Helpers.check_close "max" 9. (Online.max_value acc)

let test_online_merge () =
  let xs = Array.init 101 (fun i -> sin (float_of_int i)) in
  let whole = Online.create () in
  Online.add_many whole xs;
  let a = Online.create () and b = Online.create () in
  Array.iteri (fun i x -> Online.add (if i < 37 then a else b) x) xs;
  let merged = Online.merge a b in
  Alcotest.(check int) "count" (Online.count whole) (Online.count merged);
  Helpers.check_close "mean" (Online.mean whole) (Online.mean merged);
  Helpers.check_close "variance" (Online.variance whole) (Online.variance merged);
  Helpers.check_close "min" (Online.min_value whole) (Online.min_value merged)

let test_online_merge_empty () =
  let a = Online.create () in
  Online.add a 3.;
  let m = Online.merge a (Online.create ()) in
  Helpers.check_close "merge with empty" 3. (Online.mean m);
  let m2 = Online.merge (Online.create ()) a in
  Helpers.check_close "empty with merge" 3. (Online.mean m2)

let test_summary () =
  let s = Summary.of_array [| 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. |] in
  Alcotest.(check int) "count" 8 s.Summary.count;
  Helpers.check_close "min" 1. s.Summary.min;
  Helpers.check_close "max" 9. s.Summary.max;
  Helpers.check_close "median" 3.5 s.Summary.median;
  Helpers.check_close "mean" 3.875 s.Summary.mean

let test_quantile () =
  let xs = [| 10.; 20.; 30.; 40. |] in
  Helpers.check_close "q0" 10. (Summary.quantile xs 0.);
  Helpers.check_close "q1" 40. (Summary.quantile xs 1.);
  Helpers.check_close "median interp" 25. (Summary.quantile xs 0.5);
  Helpers.check_close "q1/3" 20. (Summary.quantile xs (1. /. 3.))

let test_histogram_linear () =
  let h = Histogram.create_linear ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 9.9; -1.; 10.; 11. ];
  Helpers.check_close "bin 0" 2. (Histogram.count h 0);
  Helpers.check_close "bin 1" 1. (Histogram.count h 1);
  Helpers.check_close "bin 4" 1. (Histogram.count h 4);
  Helpers.check_close "underflow" 1. (Histogram.underflow h);
  Helpers.check_close "overflow" 2. (Histogram.overflow h);
  Helpers.check_close "total" 4. (Histogram.total h);
  let lo, hi = Histogram.bin_edges h 1 in
  Helpers.check_close "edge lo" 2. lo;
  Helpers.check_close "edge hi" 4. hi;
  Helpers.check_close "center" 3. (Histogram.bin_center h 1)

let test_histogram_log () =
  let h = Histogram.create_log ~lo:1. ~hi:1000. ~bins:3 in
  List.iter (Histogram.add h) [ 2.; 20.; 200.; 0.5 ];
  Helpers.check_close "decade 0" 1. (Histogram.count h 0);
  Helpers.check_close "decade 1" 1. (Histogram.count h 1);
  Helpers.check_close "decade 2" 1. (Histogram.count h 2);
  Helpers.check_close "underflow" 1. (Histogram.underflow h);
  Helpers.check_close ~eps:1e-6 "geometric center" 31.6227766 (Histogram.bin_center h 1);
  (* density integrates to one over covered range *)
  let integral = ref 0. in
  for b = 0 to 2 do
    let lo, hi = Histogram.bin_edges h b in
    integral := !integral +. (Histogram.density h b *. (hi -. lo))
  done;
  Helpers.check_close "density integral" 1. !integral

let test_histogram_normalized () =
  let h = Histogram.create_linear ~lo:0. ~hi:4. ~bins:4 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 3.5 ];
  Alcotest.(check (array (float 1e-9))) "normalized" [| 0.25; 0.5; 0.; 0.25 |]
    (Histogram.normalized h)

let test_empirical () =
  let e = Empirical.of_samples [| 1.; 2.; 2.; 3.; 10. |] in
  Helpers.check_close "cdf below" 0. (Empirical.cdf e 0.5);
  Helpers.check_close "cdf mid" 0.6 (Empirical.cdf e 2.);
  Helpers.check_close "cdf top" 1. (Empirical.cdf e 10.);
  Helpers.check_close "quantile" 2. (Empirical.quantile e 0.5)

let test_ks () =
  let a = Empirical.of_samples (Array.init 100 (fun i -> float_of_int i)) in
  let b = Empirical.of_samples (Array.init 100 (fun i -> float_of_int i)) in
  Helpers.check_close "identical" 0. (Empirical.ks_distance a b);
  let c = Empirical.of_samples (Array.init 100 (fun i -> float_of_int (i + 50))) in
  Helpers.check_close "shifted" 0.5 (Empirical.ks_distance a c);
  (* One-sample KS against the true uniform CDF on [0, 99]. *)
  let uniform_cdf x = Float.max 0. (Float.min 1. (x /. 99.)) in
  Alcotest.(check bool) "one-sample small" true (Empirical.ks_distance_to a uniform_cdf < 0.05)

let test_discrete_basics () =
  let d = Discrete.of_weights [| 0.1; 0.; 0.3; 0.2 |] in
  Helpers.check_close "total" 0.6 (Discrete.total_mass d);
  Helpers.check_close "missing" 0.4 (Discrete.missing_mass d);
  Alcotest.(check int) "mode" 2 (Discrete.mode d);
  Helpers.check_close "cdf 2" 0.4 (Discrete.cdf d 2);
  let n = Discrete.normalize d in
  Helpers.check_close "normalized total" 1. (Discrete.total_mass n);
  (* conditional mean: (0*0.1 + 2*0.3 + 3*0.2)/0.6 = 2 *)
  Helpers.check_close "mean" 2. (Discrete.mean d);
  Helpers.check_close "expectation" (0.6 *. 2.) (Discrete.expectation d float_of_int)

let test_discrete_uniform_point () =
  let u = Discrete.uniform 4 in
  Helpers.check_close "uniform mean" 1.5 (Discrete.mean u);
  Helpers.check_close "uniform var" 1.25 (Discrete.variance u);
  let pt = Discrete.point ~n:5 3 in
  Helpers.check_close "point mean" 3. (Discrete.mean pt);
  Helpers.check_close "point var" 0. (Discrete.variance pt)

let test_discrete_tv_and_map () =
  let a = Discrete.of_weights [| 0.5; 0.5; 0. |] in
  let b = Discrete.of_weights [| 0.; 0.5; 0.5 |] in
  Helpers.check_close "tv" 0.5 (Discrete.total_variation a b);
  let folded = Discrete.map_support a (fun k -> k / 2) 2 in
  Helpers.check_close "mapped mass 0" 1. (Discrete.mass folded 0)

let test_discrete_invalid () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Discrete.of_weights: negative or NaN weight") (fun () ->
      ignore (Discrete.of_weights [| 0.1; -0.2 |]));
  Alcotest.check_raises "normalize zero" (Invalid_argument "Discrete.normalize: zero total mass")
    (fun () -> ignore (Discrete.normalize (Discrete.of_weights [| 0.; 0. |])))

let test_series_eval () =
  let s = Series.make "s" [| (0., 0.); (1., 10.); (3., 30.) |] in
  Helpers.check_close "at point" 10. (Series.eval s 1.);
  Helpers.check_close "interp" 20. (Series.eval s 2.);
  Helpers.check_close "clamp low" 0. (Series.eval s (-1.));
  Helpers.check_close "clamp high" 30. (Series.eval s 99.);
  Helpers.check_close "final" 30. (Series.final_value s);
  Helpers.check_close "max" 30. (Series.max_y s);
  Helpers.check_close "min" 0. (Series.min_y s)

let test_series_of_ys_and_map () =
  let s = Series.of_ys "s" ~x0:5. ~dx:2. [| 1.; 2.; 3. |] in
  Alcotest.(check int) "length" 3 (Series.length s);
  Helpers.check_close "x spacing" 2. (Series.eval s 7.);
  let doubled = Series.map_y (fun y -> 2. *. y) s in
  Helpers.check_close "mapped" 4. (Series.eval doubled 7.)

let test_series_threshold_and_area () =
  let a = Series.of_ys "a" [| 4.; 3.; 2.; 1.; 0. |] in
  let b = Series.of_ys "b" [| 4.; 3.; 2.; 1.; 0. |] in
  Helpers.check_close "area identical" 0. (Series.area_between a b);
  (match Series.first_x_below a 1.5 with
  | Some x -> Helpers.check_close "first below" 3. x
  | None -> Alcotest.fail "expected threshold crossing");
  Alcotest.(check bool) "never below" true (Series.first_x_below a (-1.) = None)

let test_series_csv () =
  let s = Series.of_ys "s" [| 1.5; 2.5 |] in
  Alcotest.(check (list string)) "csv rows" [ "0,1.5"; "1,2.5" ] (Series.to_csv_rows s)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length rendered > 0
    && String.sub rendered 0 4 = "name");
  let csv = Table.to_csv t in
  Alcotest.(check bool) "csv rows" true
    (String.split_on_char '\n' csv = [ "name,value"; "alpha,1"; "b," ])

let test_table_csv_quoting () =
  let t = Table.create [ "a" ] in
  Table.add_row t [ "x,y" ];
  Alcotest.(check bool) "quoted" true
    (String.split_on_char '\n' (Table.to_csv t) = [ "a"; "\"x,y\"" ])

let test_table_overflow () =
  let t = Table.create [ "a" ] in
  Alcotest.check_raises "too many cells" (Invalid_argument "Table.add_row: more cells than headers")
    (fun () -> Table.add_row t [ "1"; "2" ])

let prop_quantile_bounds =
  Helpers.qtest ~count:100 "quantile stays within min/max"
    QCheck.(pair (list_of_size Gen.(int_range 1 40) (float_range (-100.) 100.)) (float_range 0. 1.))
    (fun (xs, q) ->
      let a = Array.of_list xs in
      let v = Summary.quantile a q in
      let s = Summary.of_array a in
      v >= s.Summary.min -. 1e-9 && v <= s.Summary.max +. 1e-9)

let prop_empirical_cdf_monotone =
  Helpers.qtest ~count:100 "empirical cdf is monotone"
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range (-50.) 50.))
    (fun xs ->
      let e = Empirical.of_samples (Array.of_list xs) in
      let probes = Array.init 101 (fun i -> -60. +. (float_of_int i *. 1.2)) in
      let ok = ref true in
      for i = 0 to 99 do
        if Empirical.cdf e probes.(i) > Empirical.cdf e probes.(i + 1) +. 1e-12 then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "online accumulator" `Quick test_online_basic;
    Alcotest.test_case "online merge" `Quick test_online_merge;
    Alcotest.test_case "online merge with empty" `Quick test_online_merge_empty;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "quantile interpolation" `Quick test_quantile;
    Alcotest.test_case "linear histogram" `Quick test_histogram_linear;
    Alcotest.test_case "log histogram" `Quick test_histogram_log;
    Alcotest.test_case "normalized histogram" `Quick test_histogram_normalized;
    Alcotest.test_case "empirical cdf/quantile" `Quick test_empirical;
    Alcotest.test_case "KS distances" `Quick test_ks;
    Alcotest.test_case "discrete basics" `Quick test_discrete_basics;
    Alcotest.test_case "discrete uniform/point" `Quick test_discrete_uniform_point;
    Alcotest.test_case "discrete TV and map_support" `Quick test_discrete_tv_and_map;
    Alcotest.test_case "discrete invalid input" `Quick test_discrete_invalid;
    Alcotest.test_case "series evaluation" `Quick test_series_eval;
    Alcotest.test_case "series constructors and map" `Quick test_series_of_ys_and_map;
    Alcotest.test_case "series threshold and area" `Quick test_series_threshold_and_area;
    Alcotest.test_case "series csv" `Quick test_series_csv;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table csv quoting" `Quick test_table_csv_quoting;
    Alcotest.test_case "table overflow" `Quick test_table_overflow;
    prop_quantile_bounds;
    prop_empirical_cdf_monotone;
  ]

(* ------------------------------------------------------------------ *)
(* Correlation / Linreg / Bootstrap                                    *)

module Correlation = Stratify_stats.Correlation
module Linreg = Stratify_stats.Linreg
module Bootstrap = Stratify_stats.Bootstrap

let test_pearson () =
  let exact = Array.init 20 (fun i -> (float_of_int i, 2. *. float_of_int i +. 1.)) in
  Helpers.check_close "perfect line" 1. (Correlation.pearson exact);
  let anti = Array.map (fun (x, y) -> (x, -.y)) exact in
  Helpers.check_close "anti" (-1.) (Correlation.pearson anti);
  Helpers.check_close "degenerate" 0. (Correlation.pearson [| (1., 2.) |]);
  Helpers.check_close "constant x" 0. (Correlation.pearson [| (1., 2.); (1., 5.); (1., 9.) |])

let test_spearman_monotone_invariance () =
  let pairs = Array.init 30 (fun i -> (float_of_int i, exp (float_of_int i /. 5.))) in
  Helpers.check_close "monotone -> 1" 1. (Correlation.spearman pairs);
  (* Ties handled by average ranks: a tied block should not break the
     coefficient's bounds. *)
  let tied = [| (1., 1.); (1., 2.); (2., 3.); (3., 3.) |] in
  let r = Correlation.spearman tied in
  Alcotest.(check bool) "in [-1,1]" true (r >= -1. && r <= 1.)

let test_kendall () =
  let inc = Array.init 10 (fun i -> (float_of_int i, float_of_int (i * i))) in
  Helpers.check_close "concordant" 1. (Correlation.kendall inc);
  let dec = Array.map (fun (x, y) -> (x, -.y)) inc in
  Helpers.check_close "discordant" (-1.) (Correlation.kendall dec)

let test_autocorrelation () =
  let period4 = Array.init 64 (fun i -> if i mod 4 < 2 then 1. else -1.) in
  Alcotest.(check bool) "lag 4 high" true (Correlation.autocorrelation period4 ~lag:4 > 0.8);
  Alcotest.(check bool) "lag 2 negative" true (Correlation.autocorrelation period4 ~lag:2 < -0.8);
  Helpers.check_close "lag 0" 1. (Correlation.autocorrelation period4 ~lag:0)

let test_linreg_exact () =
  let f = Linreg.fit [| (0., 1.); (1., 3.); (2., 5.) |] in
  Helpers.check_close "slope" 2. f.Linreg.slope;
  Helpers.check_close "intercept" 1. f.Linreg.intercept;
  Helpers.check_close "r2" 1. f.Linreg.r_squared;
  Helpers.check_close "predict" 9. (Linreg.predict f 4.)

let test_linreg_loglog () =
  (* y = 3 x^2 -> slope 2 in log-log. *)
  let pts = Array.init 20 (fun i -> let x = float_of_int (i + 1) in (x, 3. *. x *. x)) in
  let f = Linreg.fit_loglog pts in
  Helpers.check_close ~eps:1e-9 "exponent" 2. f.Linreg.slope;
  Helpers.check_close ~eps:1e-9 "prefactor" (log 3.) f.Linreg.intercept

let test_linreg_guards () =
  Alcotest.check_raises "one point" (Invalid_argument "Linreg.fit: need at least two points")
    (fun () -> ignore (Linreg.fit [| (1., 1.) |]));
  Alcotest.check_raises "same x"
    (Invalid_argument "Linreg.fit: need at least two distinct x values") (fun () ->
      ignore (Linreg.fit [| (1., 1.); (1., 2.) |]))

let test_bootstrap_mean () =
  let rng = Stratify_prng.Rng.create 5 in
  let xs = Array.init 200 (fun _ -> Stratify_prng.Dist.normal rng ~mu:10. ~sigma:2.) in
  let iv = Bootstrap.mean_interval rng xs in
  Alcotest.(check bool) "contains estimate" true
    (iv.Bootstrap.low <= iv.Bootstrap.estimate && iv.Bootstrap.estimate <= iv.Bootstrap.high);
  Alcotest.(check bool) "near true mean" true
    (iv.Bootstrap.low < 10.5 && iv.Bootstrap.high > 9.5);
  (* Interval width ~ 2*1.96*sigma/sqrt(n) ~ 0.55 *)
  Alcotest.(check bool) "sane width" true (iv.Bootstrap.high -. iv.Bootstrap.low < 1.5)

let test_bootstrap_guards () =
  let rng = Stratify_prng.Rng.create 6 in
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap.percentile: empty sample")
    (fun () -> ignore (Bootstrap.mean_interval rng [||]))

let extra_suite =
  [
    Alcotest.test_case "pearson" `Quick test_pearson;
    Alcotest.test_case "spearman monotone invariance" `Quick test_spearman_monotone_invariance;
    Alcotest.test_case "kendall tau" `Quick test_kendall;
    Alcotest.test_case "autocorrelation" `Quick test_autocorrelation;
    Alcotest.test_case "linreg exact fit" `Quick test_linreg_exact;
    Alcotest.test_case "linreg log-log power law" `Quick test_linreg_loglog;
    Alcotest.test_case "linreg guards" `Quick test_linreg_guards;
    Alcotest.test_case "bootstrap mean interval" `Quick test_bootstrap_mean;
    Alcotest.test_case "bootstrap guards" `Quick test_bootstrap_guards;
  ]

let suite = suite @ extra_suite
