(* Tests for the application-layer extensions: streaming delay analysis
   (§7), the eDonkey credit-queue baseline (§2), and swarm steady-state
   churn. *)

module Rng = Stratify_prng.Rng
module Profile = Stratify_bandwidth.Profile
module Saroiu = Stratify_bandwidth.Saroiu
module Bt = Stratify_bittorrent
module Ed = Stratify_edonkey
open Stratify_core

(* ------------------------------------------------------------------ *)
(* Streaming                                                           *)

let test_streaming_on_path () =
  let adj = [| [| 1 |]; [| 0; 2 |]; [| 1; 3 |]; [| 2 |] |] in
  let r = Streaming.measure ~adjacency:adj ~sources:[ 0 ] in
  Alcotest.(check int) "reachable" 4 r.Streaming.reachable;
  Alcotest.(check int) "unreachable" 0 r.Streaming.unreachable;
  Alcotest.(check int) "max delay" 3 r.Streaming.max_delay;
  Helpers.check_close "mean delay" 2. r.Streaming.mean_delay;
  Alcotest.(check (array int)) "histogram" [| 1; 1; 1; 1 |] r.Streaming.delay_histogram

let test_streaming_disconnected_and_multisource () =
  let adj = [| [| 1 |]; [| 0 |]; [| 3 |]; [| 2 |] |] in
  let r = Streaming.measure ~adjacency:adj ~sources:[ 0 ] in
  Alcotest.(check int) "unreachable pair" 2 r.Streaming.unreachable;
  let r2 = Streaming.measure ~adjacency:adj ~sources:[ 0; 2 ] in
  Alcotest.(check int) "multi-source covers" 0 r2.Streaming.unreachable;
  Alcotest.(check int) "delay 1" 1 r2.Streaming.max_delay;
  let d = Streaming.delay_by_rank ~adjacency:adj ~sources:[ 0 ] in
  Alcotest.(check (array int)) "per-peer delays" [| 0; 1; -1; -1 |] d

let test_streaming_stratified_vs_random () =
  (* §7's claim: a stratified collaboration graph has much larger play-out
     delay than a random graph with the same degree budget. *)
  let n = 600 in
  let rng = Helpers.rng ~seed:44 () in
  let b = Normal_b.rounded_normal rng ~n ~mean:4. ~sigma:0.5 in
  let stratified = Cluster.collaboration_graph ~b () in
  let random = Streaming.random_regular_baseline rng ~n ~degree:4 in
  let source = [ 0 ] in
  let s = Streaming.measure ~adjacency:stratified ~sources:source in
  let r = Streaming.measure ~adjacency:random ~sources:source in
  Alcotest.(check bool)
    (Printf.sprintf "stratified delay %.1f >> random %.1f" s.Streaming.mean_delay
       r.Streaming.mean_delay)
    true
    (s.Streaming.mean_delay > 3. *. r.Streaming.mean_delay)

let test_random_regular_baseline_degrees () =
  let rng = Helpers.rng ~seed:45 () in
  let adj = Streaming.random_regular_baseline rng ~n:300 ~degree:5 in
  let total = ref 0 in
  Array.iteri
    (fun v row ->
      Alcotest.(check bool) "degree cap" true (Array.length row <= 5);
      total := !total + Array.length row;
      Array.iter
        (fun w ->
          Alcotest.(check bool) "no self" true (w <> v);
          Alcotest.(check bool) "symmetric" true (Array.exists (fun x -> x = v) adj.(w)))
        row)
    adj;
  (* Pairing model loses only a few edges to rejections. *)
  Alcotest.(check bool) "nearly regular" true (!total > 300 * 5 * 9 / 10)

(* ------------------------------------------------------------------ *)
(* eDonkey credits                                                     *)

let test_credit_modifier_bounds_and_growth () =
  let c = Ed.Credit.create 4 in
  (* Unknown client: neutral modifier 1 (sqrt(2) > 1 but ratio rule is
     inf; min(inf, sqrt 2) = 1.41 -> clamped to >= 1; eMule gives sqrt
     rule for new clients). *)
  Helpers.check_close ~eps:1e-9 "fresh client" (sqrt 2.) (Ed.Credit.modifier c ~judge:0 ~client:1);
  Ed.Credit.record_transfer c ~from_:1 ~to_:0 98.;
  (* U=98, D=0: by_volume = sqrt(100) = 10. *)
  Helpers.check_close "generous client" 10. (Ed.Credit.modifier c ~judge:0 ~client:1);
  Ed.Credit.record_transfer c ~from_:0 ~to_:1 980.;
  (* D=980: ratio rule 2*98/980 = 0.2 -> clamped to 1. *)
  Helpers.check_close "drained credit" 1. (Ed.Credit.modifier c ~judge:0 ~client:1);
  Alcotest.check_raises "negative volume"
    (Invalid_argument "Credit.record_transfer: negative volume") (fun () ->
      Ed.Credit.record_transfer c ~from_:0 ~to_:1 (-1.))

let test_credit_directionality () =
  let c = Ed.Credit.create 3 in
  Ed.Credit.record_transfer c ~from_:2 ~to_:1 50.;
  Helpers.check_close "uploaded_to" 50. (Ed.Credit.uploaded_to c ~judge:1 ~client:2);
  Helpers.check_close "not reversed" 0. (Ed.Credit.uploaded_to c ~judge:2 ~client:1);
  Helpers.check_close "downloaded_from" 50. (Ed.Credit.downloaded_from c ~judge:2 ~client:1)

(* ------------------------------------------------------------------ *)
(* eDonkey queue simulator                                             *)

let edonkey_sim ?(n = 100) ?(ticks = 600) () =
  let rng = Rng.create 7 in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n in
  let sim = Ed.Queue_sim.create rng (Ed.Queue_sim.default_params ~uploads) in
  Ed.Queue_sim.run sim ~ticks:(ticks / 2);
  Ed.Queue_sim.reset_counters sim;
  Ed.Queue_sim.run sim ~ticks:(ticks / 2);
  sim

let test_queue_conservation () =
  let sim = edonkey_sim () in
  let up = ref 0. and down = ref 0. in
  for i = 0 to Ed.Queue_sim.size sim - 1 do
    up := !up +. Ed.Queue_sim.uploaded sim i;
    down := !down +. Ed.Queue_sim.downloaded sim i
  done;
  Helpers.check_close_rel ~rel:1e-9 "conservation" !up !down;
  Alcotest.(check bool) "data flowed" true (!up > 0.)

let test_queue_aging_serves_everyone () =
  (* Queue aging guarantees that even the slowest peer downloads. *)
  let sim = edonkey_sim () in
  for i = 0 to Ed.Queue_sim.size sim - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "peer %d downloaded" i)
      true
      (Ed.Queue_sim.downloaded sim i > 0.)
  done

let test_queue_waiting_bounded () =
  let sim = edonkey_sim () in
  (* With slots=4 and ~20 known peers, a queue position waits a few
     ticks on average; aging prevents starvation-level waits. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean wait %.1f bounded" (Ed.Queue_sim.mean_wait sim))
    true
    (Ed.Queue_sim.mean_wait sim < 50.)

let test_queue_weaker_stratification_than_tft () =
  (* The §2 contrast measured: same population, TFT stratifies download
     partners by bandwidth much more strongly than credit queues. *)
  let n = 120 in
  let uploads = Profile.rank_bandwidths Saroiu.profile ~n in
  let tft =
    let rng = Rng.create 9 in
    let params = { (Bt.Swarm.default_params ~uploads) with Bt.Swarm.d = 20. } in
    let swarm = Bt.Swarm.create rng params in
    Bt.Swarm.run swarm ~ticks:600;
    Bt.Metrics.stratification_correlation swarm
  in
  let edonkey =
    let rng = Rng.create 9 in
    let sim = Ed.Queue_sim.create rng (Ed.Queue_sim.default_params ~uploads) in
    Ed.Queue_sim.run sim ~ticks:600;
    Ed.Queue_sim.stratification_correlation sim
  in
  Alcotest.(check bool)
    (Printf.sprintf "TFT %.2f > eDonkey %.2f" tft edonkey)
    true (tft > edonkey)

let test_queue_determinism () =
  let r1 = Ed.Queue_sim.share_ratios (edonkey_sim ()) in
  let r2 = Ed.Queue_sim.share_ratios (edonkey_sim ()) in
  Alcotest.(check bool) "deterministic" true (r1 = r2)

let test_queue_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "too small" (Invalid_argument "Queue_sim.create: need at least two peers")
    (fun () -> ignore (Ed.Queue_sim.create rng (Ed.Queue_sim.default_params ~uploads:[| 1. |])));
  Alcotest.check_raises "no slots" (Invalid_argument "Queue_sim.create: need at least one slot")
    (fun () ->
      ignore
        (Ed.Queue_sim.create rng
           { (Ed.Queue_sim.default_params ~uploads:(Array.make 4 1.)) with Ed.Queue_sim.slots = 0 }))

(* ------------------------------------------------------------------ *)
(* Swarm steady churn                                                  *)

let test_piece_recycling () =
  let rng = Rng.create 11 in
  let n = 30 in
  let uploads = Array.make n 16. in
  let params =
    {
      (Bt.Swarm.default_params ~uploads) with
      Bt.Swarm.d = 12.;
      piece = Some { Bt.Swarm.pieces = 40; piece_size = 4.; init_fraction = 0.5; seeds = 1 };
    }
  in
  let swarm = Bt.Swarm.create rng params in
  Bt.Swarm.run swarm ~ticks:50;
  Bt.Swarm.recycle_peer swarm 5;
  (match (Bt.Swarm.peer swarm 5).Bt.Peer.field with
  | Some f ->
      Alcotest.(check int) "emptied" 0 (Bt.Piece.count f);
      Alcotest.(check bool) "not complete" false (Bt.Piece.is_complete f)
  | None -> Alcotest.fail "piece mode expected");
  Alcotest.(check (list int)) "unchoked cleared" [] (Bt.Swarm.peer swarm 5).Bt.Peer.unchoked;
  Helpers.check_close "counters cleared" 0. (Bt.Swarm.peer swarm 5).Bt.Peer.uploaded;
  (* Nobody still references the recycled peer in its choke state. *)
  for i = 0 to n - 1 do
    if i <> 5 then begin
      Alcotest.(check bool) "not unchoked by others" false
        (List.mem 5 (Bt.Swarm.peer swarm i).Bt.Peer.unchoked);
      Alcotest.(check bool) "not optimistic of others" false
        ((Bt.Swarm.peer swarm i).Bt.Peer.optimistic = Some 5)
    end
  done;
  (* The swarm keeps running fine afterwards. *)
  Bt.Swarm.run swarm ~ticks:100;
  Alcotest.(check bool) "recycled peer downloads again" true
    ((Bt.Swarm.peer swarm 5).Bt.Peer.downloaded > 0.)

let test_steady_churn_runs () =
  let rng = Rng.create 12 in
  let n = 40 in
  let uploads = Array.init n (fun i -> if i = 0 then 100. else 30. +. float_of_int (i mod 7)) in
  let report =
    Bt.Scenario.steady_churn rng ~uploads ~pieces:50 ~piece_size:4. ~d:12. ~warmup:300
      ~measure:600
  in
  Alcotest.(check bool)
    (Printf.sprintf "departures %d > 10" report.Bt.Scenario.departures)
    true
    (report.Bt.Scenario.departures > 10);
  Alcotest.(check bool) "positive time in system" true
    (report.Bt.Scenario.mean_time_in_system > 0.);
  Alcotest.(check bool) "positive throughput" true (report.Bt.Scenario.swarm_throughput > 0.)

let suite =
  [
    Alcotest.test_case "streaming on a path" `Quick test_streaming_on_path;
    Alcotest.test_case "streaming: disconnection and multi-source" `Quick
      test_streaming_disconnected_and_multisource;
    Alcotest.test_case "streaming: stratification costs delay" `Quick
      test_streaming_stratified_vs_random;
    Alcotest.test_case "random regular baseline" `Quick test_random_regular_baseline_degrees;
    Alcotest.test_case "credit modifier bounds" `Quick test_credit_modifier_bounds_and_growth;
    Alcotest.test_case "credit directionality" `Quick test_credit_directionality;
    Alcotest.test_case "queue conservation" `Slow test_queue_conservation;
    Alcotest.test_case "queue aging serves everyone" `Slow test_queue_aging_serves_everyone;
    Alcotest.test_case "queue waiting bounded" `Slow test_queue_waiting_bounded;
    Alcotest.test_case "TFT stratifies more than credit queues" `Slow
      test_queue_weaker_stratification_than_tft;
    Alcotest.test_case "queue determinism" `Slow test_queue_determinism;
    Alcotest.test_case "queue validation" `Quick test_queue_validation;
    Alcotest.test_case "peer recycling" `Quick test_piece_recycling;
    Alcotest.test_case "steady churn lifecycle" `Slow test_steady_churn_runs;
  ]
