(* The service layer (lib/serve): request scripts, the live world, and
   full deterministic snapshot/restore.

   The load-bearing property is stop/resume equality: running a script
   to its horizon in one go, and running it to a random stop time,
   serializing the complete world to a JSON string, restoring (possibly
   on a *different* --queue backend) and continuing, must produce
   byte-identical run manifests.  The qcheck law below drives that
   across random worlds (churn, faults, piece mode, multiple swarms)
   and all three backend pairings. *)

module Rng = Stratify_prng.Rng
module Engine = Stratify_des.Engine
module Net = Stratify_net.Net
module Request = Stratify_serve.Request
module Serve = Stratify_serve.Serve
module Jsonx = Stratify_obs.Jsonx
module Manifest = Stratify_obs.Run_manifest

(* ---- deterministic random scripts ---------------------------------- *)

(* Everything derives from one integer so qcheck shrinking stays
   meaningful (same discipline as Helpers.instance_params). *)
let mk_script seed =
  let rng = Rng.create (0x5e7e + seed) in
  let n = 6 + Rng.int rng 15 in
  let nswarms = 1 + Rng.int rng 2 in
  let swarms =
    List.init nswarms (fun i ->
        let size = 4 + Rng.int rng 7 in
        let piece =
          if Rng.bool rng then
            Some
              {
                Request.pieces = 4 + Rng.int rng 12;
                piece_size = 8.;
                init_fraction = 0.25;
                seeds = 1;
              }
          else None
        in
        let partitions =
          if Rng.bool rng then
            [
              { Request.at_tick = 2 + Rng.int rng 5; groups = Request.Halves };
              { Request.at_tick = 9 + Rng.int rng 5; groups = Request.Heal };
            ]
          else []
        in
        {
          Request.sid = Printf.sprintf "s%d" i;
          size;
          d = 6.;
          loss = (if Rng.bool rng then 0.1 else 0.);
          partitions;
          piece;
        })
  in
  let horizon = 14. +. float_of_int (Rng.int rng 8) in
  let sid k = Printf.sprintf "s%d" (k mod nswarms) in
  let nreq = 6 + Rng.int rng 10 in
  let requests =
    Array.init nreq (fun i ->
        let at = Rng.float rng (horizon -. 0.5) in
        let peer = Rng.int rng n in
        let kind =
          match Rng.int rng 6 with
          | 0 -> Request.Join { peer; swarm = sid i }
          | 1 -> Request.Leave { peer; swarm = sid i }
          | 2 | 3 -> Request.Announce { peer; swarm = sid i; want = Rng.int rng 6 }
          | 4 -> Request.Scrape { swarm = sid i }
          | _ -> Request.Stats
        in
        { Request.at; kind })
  in
  {
    Request.name = "qcheck-serve";
    seed = seed land 0xffff;
    world =
      {
        Request.n;
        d = 5.;
        b = 2;
        churn_rate = (if Rng.bool rng then 0.4 else 0.);
        bands = (if Rng.bool rng then 2 else 1);
        swarms;
      };
    requests;
    horizon;
  }

let manifest_string t = Manifest.to_string (Serve.manifest ~git:"test" t)

let with_backend b f =
  let saved = Engine.default_backend () in
  Engine.set_default_backend b;
  Fun.protect ~finally:(fun () -> Engine.set_default_backend saved) f

(* ---- stop/resume equality ------------------------------------------ *)

let seed_and_cut =
  QCheck.make
    ~print:(fun (seed, cut) -> Printf.sprintf "seed=%d cut=%.2f" seed cut)
    QCheck.Gen.(
      let* seed = int_bound 100_000 in
      let* cut10 = int_range 1 9 in
      return (seed, float_of_int cut10 /. 10.))

let stop_resume_law (seed, cut) =
  let scr = mk_script seed in
  let stop_at = Float.max 1. (cut *. scr.Request.horizon) in
  (* rotate the restore backend so every (dump, restore) pairing of
     heap/calendar/ladder gets exercised across the qcheck runs *)
  List.iteri
    (fun i run_backend ->
      let resume_backend =
        List.nth Engine.backends ((i + 1 + seed) mod List.length Engine.backends)
      in
      let uninterrupted =
        with_backend run_backend (fun () ->
            let t = Serve.create scr in
            Serve.run_script t;
            manifest_string t)
      in
      let resumed =
        let snap =
          with_backend run_backend (fun () ->
              let t = Serve.create scr in
              Serve.run_to t stop_at;
              Serve.snapshot_string t)
        in
        with_backend resume_backend (fun () ->
            let t = Serve.restore_string snap in
            (* snapshot of a restored world round-trips byte-for-byte *)
            let again = Serve.snapshot_string t in
            if not (String.equal snap again) then
              QCheck.Test.fail_reportf
                "snapshot not idempotent (%s -> %s, stop %.2f)"
                (Engine.backend_name run_backend)
                (Engine.backend_name resume_backend)
                stop_at;
            Serve.run_script t;
            manifest_string t)
      in
      if not (String.equal uninterrupted resumed) then
        QCheck.Test.fail_reportf
          "stop/resume manifest drift (%s -> %s, stop %.2f):\n%s\nvs\n%s"
          (Engine.backend_name run_backend)
          (Engine.backend_name resume_backend)
          stop_at uninterrupted resumed)
    Engine.backends;
  true

(* ---- scripted vs direct equivalence, double run -------------------- *)

let test_double_run () =
  let scr = mk_script 1234 in
  let run () =
    let t = Serve.create scr in
    Serve.run_script t;
    (manifest_string t, Serve.checksum t)
  in
  let m1, c1 = run () and m2, c2 = run () in
  Alcotest.(check string) "same manifest" m1 m2;
  Alcotest.(check int) "same checksum" c1 c2

let test_backend_invariance () =
  let scr = mk_script 4321 in
  let run b =
    with_backend b (fun () ->
        let t = Serve.create scr in
        Serve.run_script t;
        manifest_string t)
  in
  match List.map run Engine.backends with
  | m :: rest ->
      List.iter (fun m' -> Alcotest.(check string) "backend-invariant" m m') rest
  | [] -> Alcotest.fail "no backends"

(* ---- script JSON ---------------------------------------------------- *)

let script_roundtrip_law (seed, _) =
  let scr = mk_script seed in
  let scr' = Request.of_json (Request.to_json scr) in
  scr = scr'

let expect_parse_error what json =
  match Request.of_json (Jsonx.of_string json) with
  | _ -> Alcotest.failf "%s: unknown key accepted" what
  | exception Jsonx.Parse_error msg ->
      if not (Helpers.contains msg "unknown") then
        Alcotest.failf "%s: error %S does not name the unknown key" what msg

let minimal_script extra_world extra_top =
  Printf.sprintf
    {|{"name": "x", "seed": 1, "world": {"n": 4, "swarms": [{"sid": "a", "size": 3}]%s}, "requests": [], "horizon": 5.0%s}|}
    extra_world extra_top

let test_unknown_keys () =
  expect_parse_error "top level" (minimal_script "" {|, "bogus": 1|});
  expect_parse_error "world" (minimal_script {|, "pop": 9|} "");
  expect_parse_error "swarm"
    {|{"name": "x", "seed": 1, "world": {"n": 4, "swarms": [{"sid": "a", "size": 3, "speed": 9}]}, "requests": [], "horizon": 5.0}|};
  expect_parse_error "request"
    {|{"name": "x", "seed": 1, "world": {"n": 4, "swarms": [{"sid": "a", "size": 3}]}, "requests": [{"at": 1.0, "kind": "stats", "why": 0}], "horizon": 5.0}|};
  expect_parse_error "pieces"
    {|{"name": "x", "seed": 1, "world": {"n": 4, "swarms": [{"sid": "a", "size": 3, "pieces": {"pieces": 4, "piece_size": 8.0, "chunk": 1}}]}, "requests": [], "horizon": 5.0}|}

let expect_invalid what fragment f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument msg ->
      if not (Helpers.contains msg fragment) then
        Alcotest.failf "%s: message %S lacks %S" what msg fragment

let test_validate_errors () =
  let base = mk_script 7 in
  expect_invalid "horizon overrun" "beyond the horizon" (fun () ->
      Request.validate
        {
          base with
          Request.requests = [| { Request.at = base.Request.horizon +. 1.; kind = Request.Stats } |];
        });
  expect_invalid "unknown swarm ref" "unknown swarm" (fun () ->
      Request.validate
        {
          base with
          Request.requests =
            [| { Request.at = 1.; kind = Request.Scrape { swarm = "nope" } } |];
        });
  expect_invalid "stdio syntax" "unknown command" (fun () ->
      Request.of_line "shout 3 loud")

(* ---- error paths: serve, engine, net (satellite sweep) -------------- *)

let test_serve_errors () =
  let t = Serve.create (mk_script 3) in
  expect_invalid "unknown swarm" "Serve: unknown swarm \"zz\"" (fun () ->
      Serve.handle t (Request.Scrape { swarm = "zz" }));
  expect_invalid "peer range" "outside the population" (fun () ->
      Serve.handle t (Request.Join { peer = 10_000; swarm = "s0" }));
  Serve.run_to t 2.;
  expect_invalid "past run_to" "Engine.run_until" (fun () -> Serve.run_to t 1.)

let test_engine_errors () =
  let e = Engine.create () in
  Engine.run_until e ~time:5.;
  expect_invalid "packed past" "Engine.schedule_packed_at" (fun () ->
      Engine.schedule_packed_at e ~time:1. 0);
  expect_invalid "packed negative delay" "Engine.schedule_packed" (fun () ->
      Engine.schedule_packed e ~delay:(-1.) 0);
  expect_invalid "restore negative now" "Engine.restore_packed" (fun () ->
      Engine.restore_packed ~now:(-1.) [||]);
  (* a closure event makes the queue unserializable — and a failed dump
     must leave the engine intact *)
  let e = Engine.create () in
  Engine.schedule_packed e ~delay:1. 7;
  Engine.schedule e ~delay:2. (fun _ -> ());
  expect_invalid "closure dump" "closure event" (fun () -> Engine.dump_packed e);
  Alcotest.(check int) "queue intact after failed dump" 2 (Engine.pending e)

let test_net_errors () =
  expect_invalid "negative tick" "Net.Tick.create" (fun () ->
      Net.Tick.create ~seed:1 ~loss:0.
        ~schedule:[ { Net.Tick.at_tick = -1; groups = None } ]
        ());
  let net = Net.create (Helpers.rng ()) (Net.ideal ()) in
  Engine.run_until (Net.engine net) ~time:10.;
  expect_invalid "past partition event" "Net.set_partition_schedule" (fun () ->
      Net.set_partition_schedule net [ { Net.at = 1.; groups = None } ]);
  (* pre-validation: nothing may have been enqueued by the failed call *)
  Alcotest.(check int) "no partial schedule" 0 (Engine.pending (Net.engine net))

let suite =
  [
    Helpers.qtest ~count:12 "serve: stop/resume == uninterrupted (all backends)"
      seed_and_cut stop_resume_law;
    Helpers.qtest ~count:60 "serve: script JSON round-trips" seed_and_cut
      script_roundtrip_law;
    Alcotest.test_case "serve: double-run equality" `Quick test_double_run;
    Alcotest.test_case "serve: manifest backend-invariant" `Quick
      test_backend_invariance;
    Alcotest.test_case "serve: unknown JSON keys rejected" `Quick
      test_unknown_keys;
    Alcotest.test_case "serve: validation errors are named" `Quick
      test_validate_errors;
    Alcotest.test_case "serve: reference errors are named" `Quick
      test_serve_errors;
    Alcotest.test_case "engine: packed error paths are named" `Quick
      test_engine_errors;
    Alcotest.test_case "net: partition scripting error paths" `Quick
      test_net_errors;
  ]
