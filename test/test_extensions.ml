(* Tests for the general-utility framework (§7), the classical capacitated
   substrates, gossip peer sampling, the alpha-indexed fluid limit, and the
   flash-crowd scenario. *)

module Rng = Stratify_prng.Rng
module Gen = Stratify_graph.Gen
module Spatial = Stratify_graph.Spatial
module U = Stratify_graph.Undirected
module Components = Stratify_graph.Components
module Series = Stratify_stats.Series
module Bt = Stratify_bittorrent
open Stratify_core

(* ------------------------------------------------------------------ *)
(* Utility                                                             *)

let test_utility_global_ranking () =
  let ranking = Ranking.of_scores [| 5.; 9.; 1. |] in
  let u = Utility.global_ranking ranking in
  Helpers.check_close "value = score" 9. (Utility.value u 0 1);
  Helpers.check_close "independent of judge" (Utility.value u 0 2) (Utility.value u 1 2)

let test_utility_blend_and_symmetry () =
  let a = Utility.of_function (fun p q -> float_of_int (p + q)) in
  let b = Utility.of_function (fun p q -> float_of_int (p * q)) in
  let mixed = Utility.blend a b ~alpha:0.25 in
  Helpers.check_close "blend" ((0.25 *. 5.) +. (0.75 *. 6.)) (Utility.value mixed 2 3);
  Alcotest.(check bool) "symmetric" true (Utility.is_symmetric mixed ~n:6);
  let asym = Utility.of_function (fun p q -> float_of_int (p - q)) in
  Alcotest.(check bool) "asymmetric" false (Utility.is_symmetric asym ~n:3);
  Alcotest.check_raises "alpha range" (Invalid_argument "Utility.blend: alpha must be in [0,1]")
    (fun () -> ignore (Utility.blend a b ~alpha:1.5))

let test_utility_preference_lists () =
  let u = Utility.of_function (fun _ q -> -.float_of_int q) in
  (* prefers lower ids *)
  let lists = Utility.preference_lists u ~acceptance:[| [| 2; 1 |]; [| 0; 2 |]; [| 0; 1 |] |] in
  Alcotest.(check (array int)) "sorted" [| 1; 2 |] lists.(0);
  Alcotest.(check (array int)) "sorted 2" [| 0; 1 |] lists.(2)

(* ------------------------------------------------------------------ *)
(* General_matching                                                    *)

let test_general_of_instance_matches_greedy () =
  let rng = Helpers.rng () in
  for _ = 1 to 40 do
    let n = 2 + Rng.int rng 12 in
    let inst = Helpers.random_instance rng ~n ~p:0.6 ~bmax:2 in
    let g = General_matching.of_instance inst in
    match General_matching.best_response_run g rng with
    | General_matching.Converged _ -> ()
    | General_matching.Cycled _ ->
        Alcotest.fail "global-ranking instances cannot cycle (Theorem 1)"
  done

let odd_cycle_general () =
  (* Cyclic utilities on K3: u(0,1)=u(1,2)=u(2,0)=2, reverse = 1. *)
  let u =
    Utility.of_function (fun p q -> if (p + 1) mod 3 = q then 2. else 1.)
  in
  let acceptance = [| [| 1; 2 |]; [| 0; 2 |]; [| 0; 1 |] |] in
  General_matching.create ~utility:u ~acceptance ~b:[| 1; 1; 1 |]

let test_general_odd_cycle_has_no_stable () =
  let g = odd_cycle_general () in
  Alcotest.(check bool) "no stable configuration" false (General_matching.exists_stable g);
  let rng = Helpers.rng () in
  match General_matching.best_response_run g ~max_steps:2000 rng with
  | General_matching.Cycled _ -> ()
  | General_matching.Converged _ -> Alcotest.fail "cannot converge without a stable config"

let test_general_exists_stable_on_rankings () =
  let rng = Helpers.rng ~seed:3 () in
  for _ = 1 to 25 do
    let n = 1 + Rng.int rng 6 in
    let inst = Helpers.random_instance rng ~n ~p:0.7 ~bmax:2 in
    Alcotest.(check bool) "always exists" true
      (General_matching.exists_stable (General_matching.of_instance inst))
  done

let test_general_guards () =
  Alcotest.check_raises "asymmetric acceptance"
    (Invalid_argument "General_matching: acceptance is not symmetric") (fun () ->
      ignore
        (General_matching.create
           ~utility:(Utility.of_function (fun _ q -> float_of_int q))
           ~acceptance:[| [| 1 |]; [||] |] ~b:[| 1; 1 |]))

let test_general_state_operations () =
  let g = odd_cycle_general () in
  let s = General_matching.State.empty g in
  General_matching.State.connect s 0 1;
  Alcotest.(check (list int)) "mates" [ 1 ] (General_matching.State.mates s 0);
  Alcotest.(check int) "edges" 1 (General_matching.State.edge_count s);
  (* 2 blocks with 1 (1 prefers 2 to 0). *)
  Alcotest.(check bool) "blocking" true (General_matching.is_blocking g s 1 2);
  Alcotest.(check (list (pair int int))) "pairs" [ (1, 2) ]
    (General_matching.blocking_pairs g s);
  General_matching.satisfy g s 1 2;
  Alcotest.(check bool) "1-2 now" true (General_matching.State.mated s 1 2);
  Alcotest.(check bool) "0 dropped" false (General_matching.State.mated s 0 1)

(* ------------------------------------------------------------------ *)
(* Symmetric_greedy                                                    *)

let random_symmetric_case rng n bmax =
  let positions = Spatial.random_positions rng ~n in
  let u = Utility.symmetric_distance (Spatial.distance positions) in
  let graph = Gen.gnp rng ~n ~p:0.7 in
  let acceptance = U.adjacency_arrays graph in
  let b = Array.init n (fun _ -> 1 + Rng.int rng bmax) in
  (General_matching.create ~utility:u ~acceptance ~b, u, positions)

let test_symmetric_greedy_stable () =
  let rng = Helpers.rng ~seed:8 () in
  for _ = 1 to 60 do
    let n = 2 + Rng.int rng 20 in
    let g, u, _ = random_symmetric_case rng n 3 in
    let s = Symmetric_greedy.stable_state g ~utility:u in
    Alcotest.(check bool) "stable" true (General_matching.is_stable g s)
  done

let test_symmetric_greedy_proximity () =
  (* Latency clustering: chosen partners are much closer than random
     pairs. *)
  let rng = Helpers.rng ~seed:9 () in
  let n = 120 in
  let positions = Spatial.random_positions rng ~n in
  let u = Utility.symmetric_distance (Spatial.distance positions) in
  let acceptance = U.adjacency_arrays (Gen.complete n) in
  let g = General_matching.create ~utility:u ~acceptance ~b:(Array.make n 2) in
  let s = Symmetric_greedy.stable_state g ~utility:u in
  let partner_dist = ref 0. and partner_edges = ref 0 in
  for p = 0 to n - 1 do
    List.iter
      (fun q ->
        partner_dist := !partner_dist +. Spatial.distance positions p q;
        incr partner_edges)
      (General_matching.State.mates s p)
  done;
  let mean_partner = !partner_dist /. float_of_int !partner_edges in
  (* Mean distance of uniform pairs in the unit square is ~0.52. *)
  Alcotest.(check bool)
    (Printf.sprintf "partners close: %.3f << 0.52" mean_partner)
    true (mean_partner < 0.2)

let test_symmetric_dynamics_converge () =
  (* Best-response dynamics also converge for symmetric utilities (no
     preference cycles are possible). *)
  let rng = Helpers.rng ~seed:10 () in
  for _ = 1 to 25 do
    let n = 2 + Rng.int rng 12 in
    let g, _, _ = random_symmetric_case rng n 2 in
    match General_matching.best_response_run g ~max_steps:20_000 rng with
    | General_matching.Converged _ -> ()
    | General_matching.Cycled _ -> Alcotest.fail "symmetric utilities should not cycle"
  done

(* ------------------------------------------------------------------ *)
(* Hospital_residents                                                  *)

let test_hr_known_instance () =
  let inst =
    {
      Hospital_residents.resident_prefs = [| [| 0; 1 |]; [| 0; 1 |]; [| 0 |] |];
      hospital_prefs = [| [| 2; 0; 1 |]; [| 0; 1 |] |];
      capacity = [| 1; 2 |];
    }
  in
  let m = Hospital_residents.solve inst in
  Alcotest.(check bool) "stable" true (Hospital_residents.is_stable inst m);
  (* Hospital 0 (capacity 1) prefers resident 2. *)
  Alcotest.(check int) "resident 2 -> hospital 0" 0 m.Hospital_residents.hospital_of.(2);
  Alcotest.(check (list int)) "hospital 1 takes 0 and 1" [ 0; 1 ]
    m.Hospital_residents.residents_of.(1);
  Alcotest.(check (list int)) "nobody unmatched" [] (Hospital_residents.unmatched_residents m)

let random_hr rng ~n_res ~n_hosp =
  (* Random mutual acceptability + random strict orders + capacities. *)
  let accept = Array.make_matrix n_res n_hosp false in
  for r = 0 to n_res - 1 do
    for h = 0 to n_hosp - 1 do
      accept.(r).(h) <- Rng.bernoulli rng 0.6
    done
  done;
  let shuffle_of l =
    let a = Array.of_list l in
    Stratify_prng.Dist.shuffle rng a;
    a
  in
  let resident_prefs =
    Array.init n_res (fun r ->
        shuffle_of (List.filter (fun h -> accept.(r).(h)) (List.init n_hosp (fun h -> h))))
  in
  let hospital_prefs =
    Array.init n_hosp (fun h ->
        shuffle_of (List.filter (fun r -> accept.(r).(h)) (List.init n_res (fun r -> r))))
  in
  let capacity = Array.init n_hosp (fun _ -> Rng.int rng 3) in
  { Hospital_residents.resident_prefs; hospital_prefs; capacity }

let test_hr_random_instances () =
  let rng = Helpers.rng ~seed:12 () in
  for _ = 1 to 120 do
    let inst = random_hr rng ~n_res:(1 + Rng.int rng 10) ~n_hosp:(1 + Rng.int rng 5) in
    let m = Hospital_residents.solve inst in
    Alcotest.(check bool) "stable" true (Hospital_residents.is_stable inst m);
    (* Capacities respected and assignment mutually consistent. *)
    Array.iteri
      (fun h members ->
        Alcotest.(check bool) "capacity" true
          (List.length members <= inst.Hospital_residents.capacity.(h));
        List.iter
          (fun r -> Alcotest.(check int) "mutual" h m.Hospital_residents.hospital_of.(r))
          members)
      m.Hospital_residents.residents_of
  done

let test_hr_zero_capacity () =
  let inst =
    {
      Hospital_residents.resident_prefs = [| [| 0 |] |];
      hospital_prefs = [| [| 0 |] |];
      capacity = [| 0 |];
    }
  in
  let m = Hospital_residents.solve inst in
  Alcotest.(check (list int)) "unmatched" [ 0 ] (Hospital_residents.unmatched_residents m);
  Alcotest.(check bool) "stable (capacity 0 cannot block)" true
    (Hospital_residents.is_stable inst m)

let test_hr_validation () =
  let bad =
    {
      Hospital_residents.resident_prefs = [| [| 0 |] |];
      hospital_prefs = [| [||] |];
      capacity = [| 1 |];
    }
  in
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Hospital_residents: acceptability not mutual") (fun () ->
      ignore (Hospital_residents.solve bad))

(* ------------------------------------------------------------------ *)
(* Gossip                                                              *)

let check_view_validity g =
  for p = 0 to Gossip.n g - 1 do
    let v = Gossip.view g p in
    Alcotest.(check bool) "view bounded" true (Array.length v <= Gossip.view_size g);
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun q ->
        Alcotest.(check bool) "no self" true (q <> p);
        Alcotest.(check bool) "in range" true (q >= 0 && q < Gossip.n g);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem seen q);
        Hashtbl.replace seen q ())
      v
  done

let test_gossip_views_valid () =
  let rng = Helpers.rng ~seed:20 () in
  let g = Gossip.create rng ~n:80 ~view_size:8 in
  check_view_validity g;
  for _ = 1 to 30 do
    Gossip.round g
  done;
  check_view_validity g

let test_gossip_coverage_and_balance () =
  let rng = Helpers.rng ~seed:21 () in
  let g = Gossip.create rng ~n:100 ~view_size:10 in
  for _ = 1 to 20 do
    Gossip.round g
  done;
  Helpers.check_close ~eps:0.02 "coverage ~ c/(n-1)" (10. /. 99.) (Gossip.view_coverage g);
  (* In-degree stays balanced (uniform random would give sd ~ sqrt(c)). *)
  Alcotest.(check bool) "balanced in-degree" true (Gossip.indegree_stddev g < 3. *. sqrt 10.)

let test_gossip_graph_connected () =
  let rng = Helpers.rng ~seed:22 () in
  let g = Gossip.create rng ~n:60 ~view_size:6 in
  for _ = 1 to 10 do
    Gossip.round g
  done;
  let comps = Components.of_graph (Gossip.acceptance_graph g) in
  Alcotest.(check int) "one component" 1 comps.Components.count

let test_gossip_supports_matching () =
  (* The paper's point: the initiative dynamics run fine on a
     gossip-maintained acceptance graph. *)
  let rng = Helpers.rng ~seed:23 () in
  let g = Gossip.create rng ~n:80 ~view_size:10 in
  for _ = 1 to 10 do
    Gossip.round g
  done;
  let inst = Instance.create ~graph:(Gossip.acceptance_graph g) ~b:(Array.make 80 1) () in
  let stable = Greedy.stable_config inst in
  Alcotest.(check bool) "stable on gossip view" true (Blocking.is_stable stable);
  Alcotest.(check bool) "most peers matched" true (Config.edge_count stable > 30)

let test_gossip_rank_discovery () =
  (* The paper's stated use of gossip: peers discover their global rank by
     sampling views.  Error shrinks with more rounds. *)
  let rng = Helpers.rng ~seed:24 () in
  let n = 200 in
  let scores = Array.init n (fun i -> 1000. -. float_of_int i) in
  let g = Gossip.create rng ~n ~view_size:10 in
  let est = Gossip.Rank_estimator.create ~n in
  Gossip.Rank_estimator.observe est g ~scores;
  let early = Gossip.Rank_estimator.mean_absolute_error est ~scores in
  for _ = 1 to 40 do
    Gossip.round g;
    Gossip.Rank_estimator.observe est g ~scores
  done;
  let late = Gossip.Rank_estimator.mean_absolute_error est ~scores in
  Alcotest.(check bool)
    (Printf.sprintf "error shrinks: %.1f -> %.1f ranks" early late)
    true (late < early);
  (* Binomial sampling over ~40 rounds x 10 samples: a few ranks of
     error out of 200. *)
  Alcotest.(check bool) (Printf.sprintf "final error %.1f small" late) true (late < 15.);
  (* Extremes are easy: the best peer sees nobody better. *)
  Alcotest.(check bool) "best peer knows it" true
    (Gossip.Rank_estimator.estimated_rank est 0 < 5.)

let test_optimal_schedule () =
  (* Theorem 1, constructive half: the schedule is all-active and reaches
     the stable configuration in exactly edge-count initiatives (<= B/2). *)
  let rng = Helpers.rng ~seed:25 () in
  for _ = 1 to 50 do
    let n = 2 + Rng.int rng 20 in
    let inst = Helpers.random_instance rng ~n ~p:0.5 ~bmax:3 in
    let schedule = Sim.optimal_schedule inst in
    let stable = Greedy.stable_config inst in
    Alcotest.(check int) "length = stable edges" (Config.edge_count stable)
      (List.length schedule);
    Alcotest.(check bool) "within B/2" true
      (2 * List.length schedule <= Instance.slot_total inst);
    (* replay_schedule raises if any step fails to block. *)
    let replayed = Sim.replay_schedule inst schedule in
    Alcotest.(check bool) "reaches the stable configuration" true (Config.equal replayed stable)
  done

(* ------------------------------------------------------------------ *)
(* Fluid at general alpha                                              *)

let test_fluid_offset_mass () =
  let n = 600 and d = 10. in
  let s = Fluid.offset_series ~n ~d ~alpha:0.5 in
  (* Sum of n*D over offsets times 1/n = total match probability ~ 1. *)
  let mass =
    Array.fold_left (fun acc (_, y) -> acc +. (y /. float_of_int n)) 0. s.Series.points
  in
  Helpers.check_close ~eps:0.02 "mass ~ 1" 1. mass

let test_fluid_shift_invariance () =
  let n = 1200 and d = 10. in
  let mid = Fluid.shift_invariance_gap ~n ~d ~alpha1:0.4 ~alpha2:0.6 in
  let edge = Fluid.shift_invariance_gap ~n ~d ~alpha1:0.0 ~alpha2:0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "mid-range shift-invariant: %.3f << %.3f" mid edge)
    true
    (mid < 0.25 *. edge);
  Alcotest.check_raises "alpha range"
    (Invalid_argument "Fluid.offset_series: alpha must be in [0,1]") (fun () ->
      ignore (Fluid.offset_series ~n:100 ~d:5. ~alpha:1.5))

(* ------------------------------------------------------------------ *)
(* Flash crowd scenario                                                *)

let test_flash_crowd_completes () =
  let rng = Helpers.rng ~seed:30 () in
  let n = 40 in
  let uploads = Array.make n 20. in
  uploads.(0) <- 80.;
  let result =
    Bt.Scenario.flash_crowd rng ~uploads ~pieces:60 ~piece_size:4. ~d:12. ~max_ticks:3000
  in
  let completed =
    Array.fold_left (fun acc t -> if t <> None then acc + 1 else acc) 0 result.Bt.Scenario.completion_ticks
  in
  Alcotest.(check bool) (Printf.sprintf "most complete (%d/%d)" completed n) true
    (completed > n / 2);
  (* Completion curve is non-decreasing. *)
  let pts = result.Bt.Scenario.completed_curve.Series.points in
  for i = 1 to Array.length pts - 1 do
    Alcotest.(check bool) "monotone" true (snd pts.(i) >= snd pts.(i - 1))
  done

let test_flash_crowd_stratifies_completion () =
  (* The file must be large relative to per-tick bandwidth: stratification
     needs many rechoke periods to form before anyone completes. *)
  let rng = Helpers.rng ~seed:31 () in
  let n = 50 in
  let uploads = Array.init n (fun i -> if i = 0 then 200. else 80. *. Float.pow 0.92 (float_of_int i)) in
  let result =
    Bt.Scenario.flash_crowd rng ~uploads ~pieces:300 ~piece_size:40. ~d:15. ~max_ticks:20_000
  in
  let corr = Bt.Scenario.completion_capacity_correlation result ~uploads in
  Alcotest.(check bool)
    (Printf.sprintf "faster peers finish earlier (rho = %.2f)" corr)
    true (corr < -0.15);
  (* Decile contrast: the fastest decile completes before the slowest. *)
  let t i =
    match result.Bt.Scenario.completion_ticks.(i) with
    | Some t -> float_of_int t
    | None -> float_of_int 20_000
  in
  let mean lo hi =
    let s = ref 0. in
    for i = lo to hi do
      s := !s +. t i
    done;
    !s /. float_of_int (hi - lo + 1)
  in
  Alcotest.(check bool) "top decile beats bottom decile" true (mean 1 10 < mean 40 49)

let suite =
  [
    Alcotest.test_case "utility: global ranking" `Quick test_utility_global_ranking;
    Alcotest.test_case "utility: blend and symmetry" `Quick test_utility_blend_and_symmetry;
    Alcotest.test_case "utility: preference lists" `Quick test_utility_preference_lists;
    Alcotest.test_case "general matching embeds global ranking" `Quick
      test_general_of_instance_matches_greedy;
    Alcotest.test_case "odd utility cycle: no stable config, dynamics cycle" `Quick
      test_general_odd_cycle_has_no_stable;
    Alcotest.test_case "exists_stable on global rankings" `Quick
      test_general_exists_stable_on_rankings;
    Alcotest.test_case "general matching guards" `Quick test_general_guards;
    Alcotest.test_case "general matching state ops" `Quick test_general_state_operations;
    Alcotest.test_case "symmetric greedy is stable" `Quick test_symmetric_greedy_stable;
    Alcotest.test_case "latency matching clusters by proximity" `Quick
      test_symmetric_greedy_proximity;
    Alcotest.test_case "symmetric dynamics converge" `Quick test_symmetric_dynamics_converge;
    Alcotest.test_case "hospitals/residents: known instance" `Quick test_hr_known_instance;
    Alcotest.test_case "hospitals/residents: random instances stable" `Quick
      test_hr_random_instances;
    Alcotest.test_case "hospitals/residents: zero capacity" `Quick test_hr_zero_capacity;
    Alcotest.test_case "hospitals/residents: validation" `Quick test_hr_validation;
    Alcotest.test_case "gossip views stay valid" `Quick test_gossip_views_valid;
    Alcotest.test_case "gossip coverage and balance" `Quick test_gossip_coverage_and_balance;
    Alcotest.test_case "gossip graph is connected" `Quick test_gossip_graph_connected;
    Alcotest.test_case "matching on gossip views" `Quick test_gossip_supports_matching;
    Alcotest.test_case "gossip rank discovery" `Quick test_gossip_rank_discovery;
    Alcotest.test_case "optimal B/2 schedule (Thm 1)" `Quick test_optimal_schedule;
    Alcotest.test_case "fluid offset mass" `Quick test_fluid_offset_mass;
    Alcotest.test_case "fluid shift invariance (stratification)" `Quick
      test_fluid_shift_invariance;
    Alcotest.test_case "flash crowd completes" `Slow test_flash_crowd_completes;
    Alcotest.test_case "flash crowd: completion order stratifies" `Slow
      test_flash_crowd_stratifies_completion;
  ]
