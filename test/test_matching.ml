module Rng = Stratify_prng.Rng
module Dist = Stratify_prng.Dist
module Gen = Stratify_graph.Gen
module U = Stratify_graph.Undirected
open Stratify_core

(* ------------------------------------------------------------------ *)
(* Ranking                                                             *)

let test_ranking_of_scores () =
  let r = Ranking.of_scores [| 1.5; 9.; 4. |] in
  Alcotest.(check int) "best peer" 1 (Ranking.peer_at r 0);
  Alcotest.(check int) "middle peer" 2 (Ranking.peer_at r 1);
  Alcotest.(check int) "worst peer" 0 (Ranking.peer_at r 2);
  Alcotest.(check int) "rank of 9." 0 (Ranking.rank r 1);
  Alcotest.(check bool) "prefers" true (Ranking.prefers r 1 0);
  Alcotest.(check bool) "not identity" false (Ranking.is_identity r)

let test_ranking_ties_rejected () =
  match Ranking.of_scores [| 1.; 2.; 1. |] with
  | exception Ranking.Ties (a, b) ->
      Alcotest.(check bool) "tie peers" true ((a = 0 && b = 2) || (a = 2 && b = 0))
  | _ -> Alcotest.fail "expected Ties"

let test_ranking_identity () =
  let r = Ranking.identity 5 in
  Alcotest.(check bool) "identity" true (Ranking.is_identity r);
  for i = 0 to 4 do
    Alcotest.(check int) "rank = id" i (Ranking.rank r i)
  done;
  Alcotest.(check int) "compare" (-1)
    (compare (Ranking.compare_peers r 0 3) 0)

(* ------------------------------------------------------------------ *)
(* Instance                                                            *)

let test_instance_relabeling () =
  (* Peers 0,1,2 with scores making 2 the best; edge set {0-2, 1-2}. *)
  let g = U.create 3 in
  ignore (U.add_edge g 0 2);
  ignore (U.add_edge g 1 2);
  let ranking = Ranking.of_scores [| 5.; 1.; 9. |] in
  (* ranks: peer2 -> 0, peer0 -> 1, peer1 -> 2 *)
  let inst = Instance.create ~ranking ~graph:g ~b:[| 1; 2; 3 |] () in
  Alcotest.(check int) "n" 3 (Instance.n inst);
  Alcotest.(check int) "best peer budget" 3 (Instance.slots inst 0);
  Alcotest.(check int) "slot total" 6 (Instance.slot_total inst);
  (* Rank 0 (= original peer 2) accepts ranks 1 and 2. *)
  Alcotest.(check (array int)) "acceptance best" [| 1; 2 |] (Instance.acceptable inst 0);
  Alcotest.(check (array int)) "acceptance rank1" [| 0 |] (Instance.acceptable inst 1);
  Alcotest.(check bool) "accepts" true (Instance.accepts inst 2 0);
  Alcotest.(check bool) "not accepts" false (Instance.accepts inst 1 2);
  Alcotest.(check int) "rank->id" 2 (Instance.rank_to_id inst 0);
  Alcotest.(check int) "id->rank" 0 (Instance.id_to_rank inst 2)

let test_instance_validation () =
  let g = U.create 2 in
  Alcotest.check_raises "negative budget" (Invalid_argument "Instance: negative slot budget")
    (fun () -> ignore (Instance.create ~graph:g ~b:[| 1; -1 |] ()));
  Alcotest.check_raises "bad size" (Invalid_argument "Instance: |b| must equal the number of peers")
    (fun () -> ignore (Instance.create ~graph:g ~b:[| 1 |] ()))

(* ------------------------------------------------------------------ *)
(* Config                                                              *)

let line_instance n b =
  (* path acceptance graph 0-1-2-...-(n-1) *)
  Instance.create ~graph:(Gen.path n) ~b:(Array.make n b) ()

let test_config_connect_disconnect () =
  let inst = line_instance 4 2 in
  let c = Config.empty inst in
  Config.connect c 1 2;
  Config.connect c 0 1;
  Alcotest.(check int) "degree" 2 (Config.degree c 1);
  Alcotest.(check (list int)) "mates best first" [ 0; 2 ] (Config.mates c 1);
  Alcotest.(check bool) "mated" true (Config.mated c 2 1);
  Alcotest.(check (option int)) "best" (Some 0) (Config.best_mate c 1);
  Alcotest.(check (option int)) "worst" (Some 2) (Config.worst_mate c 1);
  Alcotest.(check int) "edges" 2 (Config.edge_count c);
  Config.disconnect c 1 2;
  Alcotest.(check bool) "unmated" false (Config.mated c 1 2);
  Alcotest.(check int) "edges after" 1 (Config.edge_count c)

let test_config_guards () =
  let inst = line_instance 4 1 in
  let c = Config.empty inst in
  Config.connect c 0 1;
  Alcotest.check_raises "full" (Invalid_argument "Config.connect: no free slot") (fun () ->
      Config.connect c 1 2);
  Alcotest.check_raises "unacceptable"
    (Invalid_argument "Config.connect: pair not in the acceptance graph") (fun () ->
      Config.connect c 2 0);
  Alcotest.check_raises "not mates" (Invalid_argument "Config.disconnect: not mates") (fun () ->
      Config.disconnect c 2 3)

let test_config_drop_worst_copy_equal () =
  let inst = line_instance 5 2 in
  let c = Config.of_pairs inst [ (1, 2); (2, 3) ] in
  let c2 = Config.copy c in
  Alcotest.(check bool) "copies equal" true (Config.equal c c2);
  Alcotest.(check (option int)) "drop worst" (Some 3) (Config.drop_worst c 2);
  Alcotest.(check bool) "now differ" false (Config.equal c c2);
  Alcotest.(check bool) "copy untouched" true (Config.mated c2 2 3);
  Alcotest.(check (option int)) "drop empty" None (Config.drop_worst c 0);
  Alcotest.(check bool) "signatures differ" true (Config.signature c <> Config.signature c2)

let prop_config_worst_cache_matches_lists =
  (* [Config] caches each peer's worst mate for O(1) [worst_mate]/[mated];
     this drives random connect/disconnect/drop_worst sequences against
     the plain-list reference the cache replaced ([List.nth] for worst,
     [List.mem] for membership) and demands identical observations
     throughout. *)
  Helpers.qtest ~count:200 "worst-mate cache = list reference under random ops"
    Helpers.instance_params (fun (seed, n, p, bmax) ->
      let rng = Rng.create seed in
      let inst = Helpers.random_instance rng ~n ~p ~bmax in
      let n = Instance.n inst in
      let c = Config.empty inst in
      let model = Array.make n [] in
      let model_worst q =
        match model.(q) with [] -> None | l -> Some (List.nth l (List.length l - 1))
      in
      let model_connect a b =
        model.(a) <- List.sort compare (b :: model.(a));
        model.(b) <- List.sort compare (a :: model.(b))
      in
      let model_disconnect a b =
        model.(a) <- List.filter (( <> ) b) model.(a);
        model.(b) <- List.filter (( <> ) a) model.(b)
      in
      let agree q =
        Config.mates c q = model.(q)
        && Config.worst_mate c q = model_worst q
        && Config.degree c q = List.length model.(q)
        && List.for_all
             (fun other -> Config.mated c q other = List.mem other model.(q))
             (Array.to_list (Instance.acceptable inst q))
      in
      let ok = ref true in
      for _ = 1 to 120 do
        let a = Rng.int rng n in
        (match Rng.int rng 3 with
        | 0 ->
            (* Connect [a] to a random acceptable free peer, if any. *)
            let candidates =
              List.filter
                (fun b ->
                  Config.free_slots c b > 0 && (not (List.mem b model.(a))) && b <> a)
                (Array.to_list (Instance.acceptable inst a))
            in
            if Config.free_slots c a > 0 && candidates <> [] then begin
              let b = List.nth candidates (Rng.int rng (List.length candidates)) in
              Config.connect c a b;
              model_connect a b
            end
        | 1 -> (
            match (Config.drop_worst c a, model_worst a) with
            | Some w, Some w' when w = w' -> model_disconnect a w
            | None, None -> ()
            | _ -> ok := false)
        | _ ->
            (* Disconnect a uniformly random current mate. *)
            if model.(a) <> [] then begin
              let b = List.nth model.(a) (Rng.int rng (List.length model.(a))) in
              Config.disconnect c a b;
              model_disconnect a b
            end);
        if not (agree a) then ok := false
      done;
      !ok
      && (let all = ref true in
          for q = 0 to n - 1 do
            if not (agree q) then all := false
          done;
          !all)
      && Config.edge_count c
         = Array.fold_left (fun acc l -> acc + List.length l) 0 model / 2)

(* ------------------------------------------------------------------ *)
(* Backend equivalence                                                 *)

(* Executable spec of [Instance.first_index_above]: linear scan of the
   materialized row. *)
let first_above_spec row rank =
  let len = Array.length row in
  let rec go i = if i >= len || row.(i) > rank then i else go (i + 1) in
  go 0

(* Observational equality of two instances describing the same acceptance
   system through different backends: every accessor of the iteration API
   must agree (and match the row-based spec). *)
let instances_agree a b =
  let n = Instance.n a in
  let ok = ref (n = Instance.n b) in
  for p = 0 to n - 1 do
    let row_a = Instance.acceptable a p and row_b = Instance.acceptable b p in
    if row_a <> row_b then ok := false;
    if Instance.degree a p <> Array.length row_a then ok := false;
    if Instance.degree b p <> Array.length row_b then ok := false;
    if Instance.slots a p <> Instance.slots b p then ok := false;
    Array.iteri
      (fun i q ->
        if Instance.acceptable_at a p i <> q || Instance.acceptable_at b p i <> q then ok := false)
      row_a;
    let collected = ref [] in
    Instance.iter_acceptable a p (fun q -> collected := q :: !collected);
    if List.rev !collected <> Array.to_list row_a then ok := false;
    if Instance.fold_acceptable a p (fun acc _ -> acc + 1) 0 <> Array.length row_a then ok := false;
    for q = 0 to n - 1 do
      if Instance.accepts a p q <> Instance.accepts b p q then ok := false
    done;
    for rank = -1 to n do
      let spec = first_above_spec row_a rank in
      if Instance.first_index_above a p ~rank <> spec then ok := false;
      if Instance.first_index_above b p ~rank <> spec then ok := false
    done
  done;
  !ok

(* The generic blocking scan the fused kernels replaced — kept as the
   executable spec of [Blocking.best_blocking_mate]. *)
let reference_best_blocking_mate c p =
  let inst = Config.instance c in
  if Instance.slots inst p = 0 then None
  else begin
    let len = Instance.degree inst p in
    let rec scan i =
      if i >= len then None
      else begin
        let q = Instance.acceptable_at inst p i in
        if not (Blocking.would_accept c p q) then None
        else if (not (Config.mated c p q)) && Blocking.would_accept c q p then Some q
        else scan (i + 1)
      end
    in
    scan 0
  end

(* Drive one random op sequence on a config per instance (all instances
   describing the same acceptance system) and demand identical signatures
   and spec-conformant blocking observations after every op. *)
let configs_stay_equivalent rng insts ~ops =
  match insts with
  | [] -> true
  | first :: _ ->
      let n = Instance.n first in
      let cs = List.map Config.empty insts in
      let ok = ref true in
      let check () =
        (match cs with
        | c0 :: rest ->
            let s0 = Config.signature c0 in
            List.iter (fun c -> if Config.signature c <> s0 then ok := false) rest
        | [] -> ());
        List.iter
          (fun c ->
            for p = 0 to n - 1 do
              if Blocking.best_blocking_mate c p <> reference_best_blocking_mate c p then
                ok := false
            done)
          cs
      in
      for _ = 1 to ops do
        let p = Rng.int rng n in
        (match Rng.int rng 3 with
        | 0 ->
            (* A best-mate initiative — the dynamics' own operation. *)
            List.iter
              (fun c ->
                match Blocking.best_blocking_mate c p with
                | None -> ()
                | Some q ->
                    if Config.free_slots c p <= 0 then ignore (Config.drop_worst c p);
                    if Config.free_slots c q <= 0 then ignore (Config.drop_worst c q);
                    Config.connect c p q)
              cs
        | 1 -> List.iter (fun c -> ignore (Config.drop_worst c p)) cs
        | _ ->
            List.iter
              (fun c -> if Config.degree c p > 0 then Config.disconnect c p (Config.mate_at c p 0))
              cs);
        check ()
      done;
      !ok

let complete_params =
  QCheck.make
    ~print:(fun (seed, n, bmax) -> Printf.sprintf "seed=%d n=%d bmax=%d" seed n bmax)
    QCheck.Gen.(
      let* seed = int_bound 1_000_000 in
      let* n = int_range 1 20 in
      let* bmax = int_range 0 4 in
      return (seed, n, bmax))

let prop_complete_backend_equiv =
  Helpers.qtest ~count:60 "implicit complete backend = materialized dense"
    complete_params (fun (seed, n, bmax) ->
      let rng = Rng.create seed in
      let b = Array.init n (fun _ -> Rng.int rng (bmax + 1)) in
      let implicit = Instance.complete ~n ~b () in
      let dense = Instance.create ~graph:(Gen.complete n) ~b () in
      instances_agree implicit dense
      && Config.signature (Greedy.stable_config implicit)
         = Config.signature (Greedy.stable_config dense)
      && Blocking.is_stable (Greedy.stable_config implicit)
      && configs_stay_equivalent rng [ implicit; dense ] ~ops:60)

let prop_complete_minus_backend_equiv =
  Helpers.qtest ~count:60 "complete-minus backend = materialized dense"
    complete_params (fun (seed, n, bmax) ->
      let rng = Rng.create seed in
      let b = Array.init n (fun _ -> Rng.int rng (bmax + 1)) in
      let removed = List.filter (fun _ -> Rng.int rng 4 = 0) (List.init n (fun p -> p)) in
      let gone = Array.make n false in
      List.iter (fun p -> gone.(p) <- true) removed;
      let adj =
        Array.init n (fun p ->
            if gone.(p) then [||]
            else
              Array.of_list
                (List.filter (fun q -> (q <> p) && not gone.(q)) (List.init n (fun q -> q))))
      in
      let implicit = Instance.complete_minus ~n ~b ~removed () in
      let dense = Instance.of_adjacency ~adj ~b () in
      instances_agree implicit dense
      && Config.signature (Greedy.stable_config implicit)
         = Config.signature (Greedy.stable_config dense)
      && configs_stay_equivalent rng [ implicit; dense ] ~ops:60)

let prop_blocking_fused_matches_reference =
  Helpers.qtest ~count:120 "fused blocking scan = generic reference"
    Helpers.instance_params (fun (seed, n, p, bmax) ->
      let rng = Rng.create seed in
      let inst = Helpers.random_instance rng ~n ~p ~bmax in
      configs_stay_equivalent rng [ inst ] ~ops:80)

(* Bitset mate filter ≡ exact linear scan: the same op sequence driven
   on two configs of the same instance, one keeping the 63-bit mate
   mask, one forced onto the flat-array fallback — every observation
   the kernels make (mated / would_accept / is_blocking /
   best_blocking_mate) must agree, and both must match the executable
   spec. *)
let mask_paths_agree rng inst ~ops =
  let n = Instance.n inst in
  let masked = Config.empty inst in
  let flat = Config.empty inst in
  Config.set_use_mask flat false;
  let cs = [ masked; flat ] in
  let ok = ref true in
  let check () =
    if Config.signature masked <> Config.signature flat then ok := false;
    for p = 0 to n - 1 do
      let bm = Blocking.best_blocking_mate masked p in
      if bm <> Blocking.best_blocking_mate flat p then ok := false;
      if bm <> reference_best_blocking_mate masked p then ok := false;
      (match bm with
      | Some q -> if Blocking.best_blocking_mate_int masked p <> q then ok := false
      | None -> if Blocking.best_blocking_mate_int masked p <> -1 then ok := false);
      for q = 0 to n - 1 do
        if Config.mated masked p q <> Config.mated flat p q then ok := false;
        if Config.mated masked p q <> Config.mated_linear masked p q then ok := false;
        if Blocking.would_accept masked p q <> Blocking.would_accept flat p q then ok := false;
        if Blocking.is_blocking masked p q <> Blocking.is_blocking flat p q then ok := false
      done
    done
  in
  if not (Config.mask_enabled masked) || Config.mask_enabled flat then ok := false;
  check ();
  for _ = 1 to ops do
    let p = Rng.int rng n in
    (match Rng.int rng 3 with
    | 0 ->
        List.iter
          (fun c ->
            match Blocking.best_blocking_mate c p with
            | None -> ()
            | Some q ->
                if Config.free_slots c p <= 0 then ignore (Config.drop_worst c p);
                if Config.free_slots c q <= 0 then ignore (Config.drop_worst c q);
                Config.connect c p q)
          cs
    | 1 -> List.iter (fun c -> ignore (Config.drop_worst c p)) cs
    | _ ->
        List.iter
          (fun c -> if Config.degree c p > 0 then Config.disconnect c p (Config.mate_at c p 0))
          cs);
    check ()
  done;
  !ok

let prop_mask_equiv_complete =
  Helpers.qtest ~count:60 "bitset mate path = flat path (complete backend)" complete_params
    (fun (seed, n, bmax) ->
      let rng = Rng.create seed in
      let b = Array.init n (fun _ -> Rng.int rng (bmax + 1)) in
      mask_paths_agree rng (Instance.complete ~n ~b ()) ~ops:60)

let prop_mask_equiv_complete_minus =
  Helpers.qtest ~count:60 "bitset mate path = flat path (complete-minus backend)" complete_params
    (fun (seed, n, bmax) ->
      let rng = Rng.create seed in
      let b = Array.init n (fun _ -> Rng.int rng (bmax + 1)) in
      let removed = List.filter (fun _ -> Rng.int rng 4 = 0) (List.init n (fun p -> p)) in
      mask_paths_agree rng (Instance.complete_minus ~n ~b ~removed ()) ~ops:60)

let prop_mask_equiv_sparse =
  Helpers.qtest ~count:80 "bitset mate path = flat path (sparse backend)"
    Helpers.instance_params (fun (seed, n, p, bmax) ->
      let rng = Rng.create seed in
      mask_paths_agree rng (Helpers.random_instance rng ~n ~p ~bmax) ~ops:60)

(* ------------------------------------------------------------------ *)
(* Blocking                                                            *)

let test_blocking_basics () =
  let inst = line_instance 4 1 in
  let c = Config.empty inst in
  (* Empty config: every acceptance edge blocks. *)
  Alcotest.(check bool) "0-1 blocks" true (Blocking.is_blocking c 0 1);
  Alcotest.(check (list (pair int int))) "all pairs" [ (0, 1); (1, 2); (2, 3) ]
    (Blocking.blocking_pairs c);
  Config.connect c 1 2;
  (* 0-1 still blocks: 1 prefers 0 to its worst mate 2. *)
  Alcotest.(check bool) "0-1 blocks still" true (Blocking.is_blocking c 0 1);
  (* 2-3 no longer blocks: 2 is full with the better mate 1. *)
  Alcotest.(check bool) "2-3 does not block" false (Blocking.is_blocking c 2 3);
  Alcotest.(check (option int)) "best blocking mate of 0" (Some 1)
    (Blocking.best_blocking_mate c 0);
  Alcotest.(check (option int)) "none for 3" None (Blocking.best_blocking_mate c 3)

let test_blocking_zero_budget () =
  let g = Gen.complete 3 in
  let inst = Instance.create ~graph:g ~b:[| 0; 1; 1 |] () in
  let c = Config.empty inst in
  Alcotest.(check bool) "b=0 never blocks" false (Blocking.is_blocking c 0 1);
  Alcotest.(check (option int)) "no mate for b=0" None (Blocking.best_blocking_mate c 0);
  Alcotest.(check (list (pair int int))) "only 1-2" [ (1, 2) ] (Blocking.blocking_pairs c)

let test_stability_check () =
  let inst = line_instance 4 1 in
  let stable = Config.of_pairs inst [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "stable" true (Blocking.is_stable stable);
  let unstable = Config.of_pairs inst [ (1, 2) ] in
  Alcotest.(check bool) "unstable" false (Blocking.is_stable unstable);
  Alcotest.(check (option (pair int int))) "first blocking" (Some (0, 1))
    (Blocking.first_blocking_pair unstable)

(* ------------------------------------------------------------------ *)
(* Greedy / Algorithm 1                                                *)

let test_greedy_line () =
  let inst = line_instance 4 1 in
  let c = Greedy.stable_config inst in
  Alcotest.(check bool) "stable" true (Blocking.is_stable c);
  Alcotest.(check bool) "0-1" true (Config.mated c 0 1);
  Alcotest.(check bool) "2-3" true (Config.mated c 2 3)

let test_greedy_complete_blocks () =
  (* Fig 4: K9 with b0 = 2 -> three complete triangles. *)
  let adj = Greedy.stable_complete ~b:(Array.make 9 2) in
  Alcotest.(check bool) "block structure" true
    (Cluster.matches_block_structure ~n:9 ~b0:2 adj);
  Alcotest.(check (array int)) "peer 0 mates" [| 1; 2 |] adj.(0);
  Alcotest.(check (array int)) "peer 4 mates" [| 3; 5 |] adj.(4)

let test_greedy_complete_matches_generic () =
  let rng = Helpers.rng () in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 30 in
    let b = Array.init n (fun _ -> Rng.int rng 4) in
    let fast = Greedy.stable_complete ~b in
    let inst = Instance.create ~graph:(Gen.complete n) ~b () in
    let slow = Config.to_adjacency (Greedy.stable_config inst) in
    Alcotest.(check bool) "fast = generic on complete graphs" true (fast = slow)
  done

let test_greedy_partners_array () =
  let inst = line_instance 5 1 in
  Alcotest.(check (array int)) "partners" [| 1; 0; 3; 2; -1 |]
    (Greedy.stable_partners_array inst);
  let inst2 = line_instance 3 2 in
  Alcotest.check_raises "b>1 rejected"
    (Invalid_argument "Greedy.stable_partners_array: 1-matching only") (fun () ->
      ignore (Greedy.stable_partners_array inst2))

let prop_greedy_stable =
  Helpers.qtest ~count:300 "Algorithm 1 output is stable" Helpers.instance_params
    (fun (seed, n, p, bmax) ->
      let rng = Rng.create seed in
      let inst = Helpers.random_instance rng ~n ~p ~bmax in
      Blocking.is_stable (Greedy.stable_config inst))

let prop_greedy_unique_stable =
  Helpers.qtest ~count:120 "greedy = the unique stable configuration (brute force)"
    QCheck.(
      make
        ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
        Gen.(pair (int_bound 1_000_000) (int_range 1 6)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let inst = Helpers.random_instance rng ~n ~p:0.6 ~bmax:2 in
      match Brute.all_stable_configs inst with
      | [ unique ] -> Config.equal unique (Greedy.stable_config inst)
      | others ->
          QCheck.Test.fail_reportf "expected exactly one stable config, got %d"
            (List.length others))

(* ------------------------------------------------------------------ *)
(* Brute                                                               *)

let test_brute_counts () =
  (* K3, b=1: empty + three single-pair configs. *)
  let inst = Instance.create ~graph:(Gen.complete 3) ~b:[| 1; 1; 1 |] () in
  Alcotest.(check int) "K3 1-matchings" 4 (Brute.count_configs inst);
  Alcotest.(check int) "materialised" 4 (List.length (Brute.all_configs inst));
  (* Unique stable: {0,1}. *)
  (match Brute.all_stable_configs inst with
  | [ c ] ->
      Alcotest.(check bool) "0-1 mated" true (Config.mated c 0 1);
      Alcotest.(check int) "peer 2 alone" 0 (Config.degree c 2)
  | l -> Alcotest.failf "expected 1 stable config, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Tan                                                                 *)

let test_tan_no_cycle_in_global_ranking () =
  let rng = Helpers.rng ~seed:5 () in
  for _ = 1 to 30 do
    let inst = Helpers.random_instance rng ~n:7 ~p:0.7 ~bmax:2 in
    let sys = Tan.of_global_ranking inst in
    Alcotest.(check bool) "no preference cycle" true (Tan.find_preference_cycle sys = None);
    Alcotest.(check bool) "ranking-like" true (Tan.is_global_ranking_like sys)
  done

let odd_cycle_prefs =
  (* The classic 3-cycle: each of 0,1,2 prefers its successor. *)
  [| [| 1; 2 |]; [| 2; 0 |]; [| 0; 1 |] |]

let test_tan_finds_odd_cycle () =
  let sys = Tan.of_lists odd_cycle_prefs in
  (match Tan.find_preference_cycle sys with
  | Some cycle -> Alcotest.(check int) "cycle length" 3 (List.length cycle)
  | None -> Alcotest.fail "expected a cycle");
  (match Tan.find_preference_cycle ~parity:`Odd sys with
  | Some _ -> ()
  | None -> Alcotest.fail "expected an odd cycle");
  Alcotest.(check bool) "even cycle absent" true
    (Tan.find_preference_cycle ~parity:`Even sys = None);
  Alcotest.(check bool) "not ranking-like" false (Tan.is_global_ranking_like sys)

let test_tan_symmetrisation () =
  (* 0 lists 1 but 1 does not list 0: the pair must be dropped. *)
  let sys = Tan.of_lists [| [| 1 |]; [||] |] in
  Alcotest.(check bool) "dropped" false (Tan.accepts sys 0 1)

let test_tan_validation () =
  Alcotest.check_raises "self" (Invalid_argument "Tan.of_lists: peer prefers itself") (fun () ->
      ignore (Tan.of_lists [| [| 0 |] |]));
  Alcotest.check_raises "dup" (Invalid_argument "Tan.of_lists: duplicate in preference list")
    (fun () -> ignore (Tan.of_lists [| [| 1; 1 |]; [| 0 |] |]))

(* ------------------------------------------------------------------ *)
(* Gale-Shapley                                                        *)

let test_gale_shapley_known () =
  (* Classic 3x3 instance. *)
  let men = [| [| 0; 1; 2 |]; [| 1; 0; 2 |]; [| 0; 1; 2 |] |] in
  let women = [| [| 1; 0; 2 |]; [| 0; 1; 2 |]; [| 0; 1; 2 |] |] in
  let m = Gale_shapley.run ~proposer_prefs:men ~receiver_prefs:women in
  Alcotest.(check bool) "stable" true
    (Gale_shapley.is_stable ~proposer_prefs:men ~receiver_prefs:women m);
  (* Proposer-optimal: man 1 gets his favourite woman 1; man 0 gets 0. *)
  Alcotest.(check int) "man 0" 0 m.Gale_shapley.proposer_mate.(0);
  Alcotest.(check int) "man 1" 1 m.Gale_shapley.proposer_mate.(1);
  Alcotest.(check int) "man 2" 2 m.Gale_shapley.proposer_mate.(2)

let random_complete_prefs rng n =
  Array.init n (fun _ ->
      let a = Array.init n (fun i -> i) in
      Dist.shuffle rng a;
      a)

let test_gale_shapley_random_stable () =
  let rng = Helpers.rng ~seed:21 () in
  for _ = 1 to 50 do
    let n = 1 + Rng.int rng 12 in
    let men = random_complete_prefs rng n and women = random_complete_prefs rng n in
    let m = Gale_shapley.run ~proposer_prefs:men ~receiver_prefs:women in
    Alcotest.(check bool) "stable" true
      (Gale_shapley.is_stable ~proposer_prefs:men ~receiver_prefs:women m);
    (* Perfect matching and mutual consistency. *)
    for p = 0 to n - 1 do
      let w = m.Gale_shapley.proposer_mate.(p) in
      Alcotest.(check int) "mutual" p m.Gale_shapley.receiver_mate.(w)
    done
  done

let test_gale_shapley_proposer_optimal () =
  (* Swapping roles: proposers do at least as well as when receiving. *)
  let rng = Helpers.rng ~seed:22 () in
  for _ = 1 to 20 do
    let n = 2 + Rng.int rng 8 in
    let men = random_complete_prefs rng n and women = random_complete_prefs rng n in
    let as_proposers = Gale_shapley.run ~proposer_prefs:men ~receiver_prefs:women in
    let as_receivers = Gale_shapley.run ~proposer_prefs:women ~receiver_prefs:men in
    let rank_when_proposing = Gale_shapley.proposer_rank_of_mate ~proposer_prefs:men as_proposers in
    (* men's mean rank of mate in the women-proposing matching *)
    let total = ref 0 in
    for m = 0 to n - 1 do
      let w = as_receivers.Gale_shapley.receiver_mate.(m) in
      Array.iteri (fun i q -> if q = w then total := !total + i) men.(m)
    done;
    let rank_when_receiving = float_of_int !total /. float_of_int n in
    Alcotest.(check bool) "proposing is weakly better" true
      (rank_when_proposing <= rank_when_receiving +. 1e-9)
  done

let test_gale_shapley_validation () =
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Gale_shapley: proposer_prefs: incomplete preference list") (fun () ->
      ignore (Gale_shapley.run ~proposer_prefs:[| [| 0 |]; [||] |] ~receiver_prefs:[| [| 0; 1 |]; [| 0; 1 |] |]))

(* ------------------------------------------------------------------ *)
(* Roommates                                                           *)

let test_roommates_classic_solvable () =
  (* Gusfield & Irving's 6-person example with a stable matching. *)
  let prefs =
    [|
      [| 3; 5; 1; 2; 4 |];
      [| 5; 2; 4; 0; 3 |];
      [| 1; 4; 5; 0; 3 |];
      [| 2; 5; 4; 1; 0 |];
      [| 0; 1; 2; 3; 5 |];
      [| 4; 2; 3; 1; 0 |];
    |]
  in
  let sys = Tan.of_lists prefs in
  (match Roommates.solve sys with
  | Roommates.Stable mate ->
      Alcotest.(check bool) "checker agrees" true (Roommates.is_stable_matching sys mate);
      Array.iteri (fun p q -> if q >= 0 then Alcotest.(check int) "mutual" p mate.(q)) mate
  | Roommates.No_stable -> Alcotest.fail "expected a stable matching")

let test_roommates_classic_unsolvable () =
  (* The classic 4-person instance with no stable matching: 0,1,2 rank
     each other cyclically and all rank 3 last. *)
  let prefs = [| [| 1; 2; 3 |]; [| 2; 0; 3 |]; [| 0; 1; 3 |]; [| 0; 1; 2 |] |] in
  let sys = Tan.of_lists prefs in
  Alcotest.(check bool) "no stable matching" true (Roommates.solve sys = Roommates.No_stable);
  (* Tan's theorem: there must be an odd preference cycle. *)
  Alcotest.(check bool) "odd cycle exists" true
    (Tan.find_preference_cycle ~parity:`Odd sys <> None)

let test_roommates_global_ranking_agrees_with_greedy () =
  let rng = Helpers.rng ~seed:33 () in
  for _ = 1 to 50 do
    let n = 1 + Rng.int rng 14 in
    let inst = Helpers.random_instance rng ~n ~p:0.5 ~bmax:1 in
    (* Restrict to peers with budget 1 by dropping b=0 peers' edges. *)
    let sys =
      Tan.of_lists
        (Array.init n (fun p ->
             if Instance.slots inst p = 0 then [||]
             else
               Array.of_list
                 (List.filter
                    (fun q -> Instance.slots inst q > 0)
                    (Array.to_list (Instance.acceptable inst p)))))
    in
    match Roommates.solve sys with
    | Roommates.Stable mate ->
        let greedy = Greedy.stable_config inst in
        Array.iteri
          (fun p q ->
            let expected = match Config.best_mate greedy p with Some m -> m | None -> -1 in
            if Instance.slots inst p > 0 then
              Alcotest.(check int) (Printf.sprintf "mate of %d" p) expected q)
          mate
    | Roommates.No_stable -> Alcotest.fail "global ranking always has a stable matching"
  done

(* Brute-force stable-matching enumeration over a general preference
   system (n small). *)
let brute_roommates sys =
  let n = Tan.size sys in
  let mate = Array.make n (-1) in
  let results = ref [] in
  let rec go p =
    if p >= n then begin
      if Roommates.is_stable_matching sys (Array.copy mate) then results := Array.copy mate :: !results
    end
    else if mate.(p) >= 0 then go (p + 1)
    else begin
      (* p stays single *)
      go (p + 1);
      Array.iter
        (fun q ->
          if q > p && mate.(q) < 0 then begin
            mate.(p) <- q;
            mate.(q) <- p;
            go (p + 1);
            mate.(p) <- -1;
            mate.(q) <- -1
          end)
        (Tan.preference_list sys p)
    end
  in
  go 0;
  !results

let random_tan rng n p =
  (* Random symmetric acceptance with random strict preferences. *)
  let g = Gen.gnp rng ~n ~p in
  let prefs =
    Array.init n (fun v ->
        let row = Array.of_list (U.neighbors g v) in
        Dist.shuffle rng row;
        row)
  in
  Tan.of_lists prefs

let prop_roommates_matches_brute_force =
  Helpers.qtest ~count:300 "Irving agrees with brute force on existence and stability"
    QCheck.(
      make
        ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
        Gen.(pair (int_bound 1_000_000) (int_range 1 7)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let sys = random_tan rng n 0.7 in
      let brute = brute_roommates sys in
      match Roommates.solve sys with
      | Roommates.Stable mate ->
          Roommates.is_stable_matching sys mate && List.length brute > 0
      | Roommates.No_stable -> brute = [])

let test_roommates_empty_and_trivial () =
  Alcotest.(check bool) "n=1 stays single" true
    (match Roommates.solve (Tan.of_lists [| [||] |]) with
    | Roommates.Stable [| -1 |] -> true
    | _ -> false);
  (match Roommates.solve (Tan.of_lists [| [| 1 |]; [| 0 |] |]) with
  | Roommates.Stable m -> Alcotest.(check (array int)) "pair" [| 1; 0 |] m
  | Roommates.No_stable -> Alcotest.fail "pair instance is stable")


let prop_relabeling_invariance =
  (* Solving with an arbitrary ranking must agree with solving the
     identity-ranked instance after relabelling the peers by rank. *)
  Helpers.qtest ~count:150 "ranking relabelling invariance" Helpers.instance_params
    (fun (seed, n, p, bmax) ->
      let rng = Rng.create seed in
      let graph = Gen.gnp rng ~n ~p in
      let b = Array.init n (fun _ -> Rng.int rng (bmax + 1)) in
      let scores = Array.init n (fun i -> float_of_int i +. Rng.unit_float rng *. 0.5) in
      match Ranking.of_scores scores with
      | exception Ranking.Ties _ -> true (* astronomically unlikely; skip *)
      | ranking ->
          let inst = Instance.create ~ranking ~graph ~b () in
          let stable = Greedy.stable_config inst in
          (* Identity-ranked twin: relabel vertices by rank. *)
          let twin_graph = U.create n in
          U.iter_edges
            (fun u v ->
              ignore
                (U.add_edge twin_graph (Ranking.rank ranking u) (Ranking.rank ranking v)))
            graph;
          let twin_b = Array.init n (fun r -> b.(Ranking.peer_at ranking r)) in
          let twin = Instance.create ~graph:twin_graph ~b:twin_b () in
          Config.equal (Greedy.stable_config twin) stable
          && Blocking.is_stable stable)

(* ------------------------------------------------------------------ *)
(* Stable partitions (Tan 1991)                                        *)

let test_partition_of_odd_cycle () =
  let sys = Tan.of_lists odd_cycle_prefs in
  (* The 3-cycle itself is the stable partition. *)
  Alcotest.(check bool) "cycle is stable partition" true
    (Stable_partition.is_stable_partition sys [| 1; 2; 0 |]);
  match Stable_partition.find_brute sys with
  | None -> Alcotest.fail "Tan: a stable partition always exists"
  | Some perm ->
      Alcotest.(check bool) "has odd party" true
        (Stable_partition.odd_parties perm <> []);
      Alcotest.(check bool) "predicts no stable matching" false
        (Stable_partition.predicts_stable_matching perm)

let test_partition_cycle_decomposition () =
  let perm = [| 1; 0; 3; 4; 2; 5 |] in
  let ps = Stable_partition.parties perm in
  Alcotest.(check int) "three parties" 3 (List.length ps);
  Alcotest.(check (list (list int))) "cycles" [ [ 0; 1 ]; [ 2; 3; 4 ]; [ 5 ] ] ps;
  Alcotest.(check (list (list int))) "odd parties" [ [ 2; 3; 4 ] ]
    (Stable_partition.odd_parties perm)

let test_stable_matching_is_stable_partition () =
  (* Any stable matching, read as a permutation with singles fixed, is a
     stable partition. *)
  let rng = Helpers.rng ~seed:51 () in
  for _ = 1 to 40 do
    let n = 1 + Rng.int rng 7 in
    let sys = random_tan rng n 0.7 in
    match Roommates.solve sys with
    | Roommates.Stable mate ->
        let perm = Array.mapi (fun x m -> if m < 0 then x else m) mate in
        Alcotest.(check bool) "embeds as partition" true
          (Stable_partition.is_stable_partition sys perm)
    | Roommates.No_stable -> ()
  done

let prop_stable_partition_always_exists =
  Helpers.qtest ~count:200 "a stable partition always exists (Tan's theorem)"
    QCheck.(
      make
        ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
        Gen.(pair (int_bound 1_000_000) (int_range 1 6)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let sys = random_tan rng n 0.7 in
      Stable_partition.find_brute sys <> None)

let prop_odd_party_criterion =
  Helpers.qtest ~count:200 "odd parties <=> no stable matching (Tan's criterion)"
    QCheck.(
      make
        ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
        Gen.(pair (int_bound 1_000_000) (int_range 1 6)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let sys = random_tan rng n 0.7 in
      match Stable_partition.find_brute sys with
      | None -> false
      | Some perm ->
          let predicted = Stable_partition.predicts_stable_matching perm in
          let actual = match Roommates.solve sys with
            | Roommates.Stable _ -> true
            | Roommates.No_stable -> false
          in
          predicted = actual)

let prop_odd_parties_invariant =
  Helpers.qtest ~count:80 "odd-party membership is an instance invariant"
    QCheck.(
      make
        ~print:(fun (s, n) -> Printf.sprintf "seed=%d n=%d" s n)
        Gen.(pair (int_bound 1_000_000) (int_range 1 5)))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let sys = random_tan rng n 0.8 in
      let members perm =
        List.sort compare (List.concat (Stable_partition.odd_parties perm))
      in
      match Stable_partition.all_brute sys with
      | [] -> false
      | first :: rest ->
          let reference = members first in
          List.for_all (fun perm -> members perm = reference) rest)

let suite =
  [
    Alcotest.test_case "ranking from scores" `Quick test_ranking_of_scores;
    Alcotest.test_case "ranking rejects ties" `Quick test_ranking_ties_rejected;
    Alcotest.test_case "identity ranking" `Quick test_ranking_identity;
    Alcotest.test_case "instance relabelling" `Quick test_instance_relabeling;
    Alcotest.test_case "instance validation" `Quick test_instance_validation;
    Alcotest.test_case "config connect/disconnect" `Quick test_config_connect_disconnect;
    Alcotest.test_case "config guards" `Quick test_config_guards;
    Alcotest.test_case "config drop/copy/equal" `Quick test_config_drop_worst_copy_equal;
    prop_config_worst_cache_matches_lists;
    Alcotest.test_case "blocking pairs" `Quick test_blocking_basics;
    Alcotest.test_case "blocking with zero budgets" `Quick test_blocking_zero_budget;
    Alcotest.test_case "stability check" `Quick test_stability_check;
    Alcotest.test_case "greedy on a path" `Quick test_greedy_line;
    Alcotest.test_case "greedy complete-graph blocks (Fig 4)" `Quick test_greedy_complete_blocks;
    Alcotest.test_case "fast complete path = generic greedy" `Quick
      test_greedy_complete_matches_generic;
    prop_complete_backend_equiv;
    prop_complete_minus_backend_equiv;
    prop_blocking_fused_matches_reference;
    prop_mask_equiv_complete;
    prop_mask_equiv_complete_minus;
    prop_mask_equiv_sparse;
    Alcotest.test_case "stable partners array" `Quick test_greedy_partners_array;
    prop_greedy_stable;
    prop_greedy_unique_stable;
    Alcotest.test_case "brute-force counting" `Quick test_brute_counts;
    Alcotest.test_case "global rankings have no preference cycle" `Quick
      test_tan_no_cycle_in_global_ranking;
    Alcotest.test_case "odd preference cycle found" `Quick test_tan_finds_odd_cycle;
    Alcotest.test_case "acceptability symmetrisation" `Quick test_tan_symmetrisation;
    Alcotest.test_case "preference-system validation" `Quick test_tan_validation;
    Alcotest.test_case "Gale-Shapley known instance" `Quick test_gale_shapley_known;
    Alcotest.test_case "Gale-Shapley random stability" `Quick test_gale_shapley_random_stable;
    Alcotest.test_case "Gale-Shapley proposer optimality" `Quick test_gale_shapley_proposer_optimal;
    Alcotest.test_case "Gale-Shapley validation" `Quick test_gale_shapley_validation;
    Alcotest.test_case "roommates: solvable classic" `Quick test_roommates_classic_solvable;
    Alcotest.test_case "roommates: unsolvable classic" `Quick test_roommates_classic_unsolvable;
    Alcotest.test_case "roommates = greedy under global ranking" `Quick
      test_roommates_global_ranking_agrees_with_greedy;
    prop_roommates_matches_brute_force;
    Alcotest.test_case "roommates corner cases" `Quick test_roommates_empty_and_trivial;
    Alcotest.test_case "stable partition of the odd cycle" `Quick test_partition_of_odd_cycle;
    Alcotest.test_case "partition cycle decomposition" `Quick test_partition_cycle_decomposition;
    Alcotest.test_case "stable matchings embed as partitions" `Quick
      test_stable_matching_is_stable_partition;
    prop_relabeling_invariance;
    prop_stable_partition_always_exists;
    prop_odd_party_criterion;
    prop_odd_parties_invariant;
  ]
