(* throwaway: time the stable-config sweep through the real lib kernel *)
open Stratify_core

let () =
  let n = 50024 in
  let inst = Instance.complete ~n ~b:(Array.make n 4) () in
  let stable = Greedy.stable_config inst in
  assert (Blocking.is_stable stable);
  let reps = 100 in
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  for _ = 1 to reps do
    for p = 0 to n - 1 do
      acc := !acc + Blocking.best_blocking_mate_int stable p
    done
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let sweeps = float_of_int (reps * n) in
  Printf.printf "acc=%d  %d sweeps in %.3fs = %.3g sweeps/s (%.0f ns/peer-sweep)\n"
    !acc (reps * n) dt (sweeps /. dt) (dt /. sweeps *. 1e9);
  (* equivalent probes under the old linear kernel: each sweep scanned
     ~min(thresh p, n) candidates *)
  let probes = ref 0 in
  for p = 0 to n - 1 do
    let t = (Config.raw_thresh stable).(p) in
    probes := !probes + (if t < n then t else n)
  done;
  Printf.printf "linear-equivalent probes/sweep-pass: %d -> effective %.3g probes/s\n"
    !probes (float_of_int (reps * !probes) /. dt)
