(* Run declarative fault-injection scenarios (see lib/net/plan.mli).

   Usage:
     stratify_plan [--out DIR] [--queue BACKEND] PLAN.plan [PLAN.plan ...]

   Each plan is executed, its assertion checks printed, and its run
   manifest written to DIR (default results/manifests/plans) as
   <name>-<seed>.json.  Exit status 0 iff every assertion of every plan
   held.  Manifests are deterministic: two same-seed invocations of the
   same binary produce byte-identical files, which the matrix-aggregate
   CI job pins with a double-run diff.  --queue selects the DES
   event-queue backend (heap | calendar | ladder); every backend pops in
   the same total (time, seq) order, so manifests are byte-identical
   across backends — CI spot-checks exactly that. *)

module Engine = Stratify_des.Engine
module Plan = Stratify_net_plan.Plan
module Manifest = Stratify_obs.Run_manifest

let () =
  let out = ref "results/manifests/plans" in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--out" :: dir :: rest ->
        out := dir;
        parse rest
    | "--out" :: [] ->
        prerr_endline "stratify_plan: --out needs a directory";
        exit 2
    | "--queue" :: name :: rest -> (
        match Engine.backend_of_string name with
        | Some b ->
            Engine.set_default_backend b;
            parse rest
        | None ->
            Printf.eprintf "stratify_plan: unknown queue backend %S (heap | calendar | ladder)\n"
              name;
            exit 2)
    | "--queue" :: [] ->
        prerr_endline "stratify_plan: --queue needs a backend (heap | calendar | ladder)";
        exit 2
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = List.rev !paths in
  if paths = [] then begin
    prerr_endline "usage: stratify_plan [--out DIR] [--queue BACKEND] PLAN.plan [PLAN.plan ...]";
    exit 2
  end;
  let failed = ref 0 in
  List.iter
    (fun path ->
      let plan = Plan.load path in
      let result = Plan.run plan in
      Printf.printf "%s (%s, seed %d): %s\n" plan.Plan.name path plan.Plan.seed
        (if result.Plan.passed then "PASS" else "FAIL");
      List.iter
        (fun c ->
          Printf.printf "  %s %s: %s\n"
            (if c.Plan.ok then "ok  " else "FAIL")
            c.Plan.label c.Plan.detail)
        result.Plan.checks;
      let written = Manifest.write ~dir:!out result.Plan.manifest in
      Printf.printf "  manifest %s\n" written;
      if not result.Plan.passed then incr failed)
    paths;
  if !failed > 0 then begin
    Printf.printf "%d plan(s) failed\n" !failed;
    exit 1
  end
