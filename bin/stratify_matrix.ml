(* Run the generated scenario matrix (see lib/net/matrix.mli).

   Usage:
     stratify_matrix [--seed N] [--filter SUB] [--shard K/M] [--jobs J]
                     [--queue BACKEND] [--out DIR] [--summary FILE]
                     [--baseline FILE] [--report FILE] [--write-baseline FILE]
     stratify_matrix --list [--seed N] [--filter SUB] [--shard K/M]
     stratify_matrix --merge OUT.json SHARD.json [SHARD.json ...]
                     [--baseline FILE] [--report FILE] [--write-baseline FILE]

   The default mode expands the matrix, selects cells (--filter substring
   match, then --shard K/M round-robin), runs them in parallel on the
   Exec domain pool, writes one kind:"matrix" manifest per cell to --out
   (default results/manifests/matrix) plus a matrix-summary.json, and —
   when --baseline is given — compares cell outcomes and metrics against
   the checked-in baseline.  Cell manifests are deterministic: two
   same-seed runs of the same binary produce byte-identical files for any
   --jobs value.

   --list prints the selected cells without running anything.  --merge
   combines shard summaries (same matrix seed required) into one, for the
   CI aggregation step.

   --queue selects the DES event-queue backend for every cell run
   (heap | calendar | ladder).  Backends pop in the same total
   (time, seq) order, so cell manifests are byte-identical across
   backends — the CI spot check re-runs one shard per backend and
   diffs the manifest trees.

   Exit status: 0 all selected cells passed and no baseline regression;
   1 otherwise; 2 usage error. *)

module Engine = Stratify_des.Engine
module Matrix = Stratify_net_plan.Matrix
module Plan = Stratify_net_plan.Plan
module Report = Stratify_cli.Matrix_report
module Manifest = Stratify_obs.Run_manifest
module Exec = Stratify_exec.Exec

let usage () =
  prerr_endline
    "usage: stratify_matrix [--seed N] [--filter SUB] [--shard K/M] [--jobs J]\n\
    \                       [--queue BACKEND] [--out DIR] [--summary FILE]\n\
    \                       [--baseline FILE] [--report FILE] [--write-baseline FILE]\n\
    \       stratify_matrix --list [--seed N] [--filter SUB] [--shard K/M]\n\
    \       stratify_matrix --merge OUT.json SHARD.json [SHARD.json ...] [flags]";
  exit 2

let parse_shard s =
  match String.split_on_char '/' s with
  | [ k; m ] -> (
      match (int_of_string_opt k, int_of_string_opt m) with
      | Some k, Some m when m >= 1 && k >= 1 && k <= m -> (k, m)
      | _ ->
          Printf.eprintf "stratify_matrix: bad --shard %S (want K/M with 1 <= K <= M)\n" s;
          exit 2)
  | _ ->
      Printf.eprintf "stratify_matrix: bad --shard %S (want K/M)\n" s;
      exit 2

type opts = {
  mutable seed : int;
  mutable filter : string option;
  mutable shard : (int * int) option;
  mutable jobs : int;
  mutable out : string;
  mutable summary : string option;
  mutable baseline : string option;
  mutable report : string option;
  mutable write_baseline : string option;
  mutable list_only : bool;
  mutable merge_mode : bool;
  mutable positional : string list; (* in order; merge mode: OUT :: SHARDS *)
}

let parse_args () =
  let o =
    {
      seed = 42;
      filter = None;
      shard = None;
      jobs = Exec.default_jobs ();
      out = "results/manifests/matrix";
      summary = None;
      baseline = None;
      report = None;
      write_baseline = None;
      list_only = false;
      merge_mode = false;
      positional = [];
    }
  in
  let rec go = function
    | [] -> ()
    | "--list" :: rest ->
        o.list_only <- true;
        go rest
    | "--seed" :: v :: rest ->
        o.seed <- int_of_string v;
        go rest
    | "--filter" :: v :: rest ->
        o.filter <- Some v;
        go rest
    | "--shard" :: v :: rest ->
        o.shard <- Some (parse_shard v);
        go rest
    | "--jobs" :: v :: rest ->
        o.jobs <- int_of_string v;
        go rest
    | "--queue" :: v :: rest -> (
        match Engine.backend_of_string v with
        | Some b ->
            Engine.set_default_backend b;
            go rest
        | None ->
            Printf.eprintf "stratify_matrix: unknown queue backend %S (heap | calendar | ladder)\n"
              v;
            exit 2)
    | "--out" :: v :: rest ->
        o.out <- v;
        go rest
    | "--summary" :: v :: rest ->
        o.summary <- Some v;
        go rest
    | "--baseline" :: v :: rest ->
        o.baseline <- Some v;
        go rest
    | "--report" :: v :: rest ->
        o.report <- Some v;
        go rest
    | "--write-baseline" :: v :: rest ->
        o.write_baseline <- Some v;
        go rest
    | "--merge" :: rest ->
        o.merge_mode <- true;
        go rest
    | flag :: _ when String.length flag >= 2 && String.sub flag 0 2 = "--" ->
        Printf.eprintf "stratify_matrix: unknown or incomplete flag %s\n" flag;
        usage ()
    | p :: rest ->
        o.positional <- o.positional @ [ p ];
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  o

let select o =
  let cells = Matrix.generate ~seed:o.seed in
  let cells = match o.filter with None -> cells | Some sub -> Matrix.filter cells ~substring:sub in
  match o.shard with None -> cells | Some (k, m) -> Matrix.shard cells ~index:k ~of_:m

(* Render/compare/write the side outputs shared by run and merge modes;
   returns the number of baseline regressions. *)
let finish o summary =
  (match o.summary with Some path -> Report.write path summary | None -> ());
  (match o.write_baseline with
  | Some path -> Report.write path (Report.baseline_of_summary summary)
  | None -> ());
  let baseline =
    match o.baseline with
    | None -> None
    | Some path ->
        if Sys.file_exists path then Some (Report.read path)
        else begin
          Printf.printf "baseline %s not found — treating every cell as new\n" path;
          None
        end
  in
  (match o.report with
  | Some path ->
      let md = Report.render_markdown ?baseline summary in
      if path = "-" then print_string md
      else begin
        let oc = open_out_bin path in
        output_string oc md;
        close_out oc
      end
  | None -> ());
  match baseline with
  | None -> 0
  | Some b ->
      let regs = Report.regressions ~baseline:b summary in
      List.iter (fun (cell, what) -> Printf.printf "REGRESSION %s: %s\n" cell what) regs;
      List.length regs

let () =
  let o = parse_args () in
  if o.merge_mode then begin
    match o.positional with
    | out :: (_ :: _ as shards) ->
        let merged = Report.merge (List.map Report.read shards) in
        Report.write out merged;
        Printf.printf "merged %d shard(s): %d cells -> %s\n" (List.length shards)
          (List.length merged.Report.cells) out;
        let regressions = finish o merged in
        let failed =
          List.length (List.filter (fun c -> not c.Report.passed) merged.Report.cells)
        in
        if failed > 0 then Printf.printf "%d cell(s) failed\n" failed;
        if failed > 0 || regressions > 0 then exit 1
    | _ ->
        prerr_endline "stratify_matrix: --merge needs OUT.json and at least one shard";
        exit 2
  end
  else begin
    if o.positional <> [] then usage ();
      let cells = select o in
      if o.list_only then begin
        Array.iter
          (fun c -> Printf.printf "%s seed=%d\n" c.Matrix.name c.Matrix.seed)
          cells;
        Printf.printf "%d cell(s) selected of %d generated (checksum %d)\n" (Array.length cells)
          Matrix.cardinality
          (Matrix.checksum cells);
        exit 0
      end;
      (* Resolve the git stamp once — run_pure would otherwise fork a
         subprocess from every worker domain. *)
      let git = Manifest.git_describe () in
      let t0 = Unix.gettimeofday () in
      let results =
        Exec.map_array ~jobs:o.jobs cells (fun cell ->
            let c0 = Unix.gettimeofday () in
            let result = Plan.run_pure ~git cell.Matrix.plan in
            let wall_ms = 1000. *. (Unix.gettimeofday () -. c0) in
            (cell, result, wall_ms))
      in
      let cell_results =
        Array.to_list
          (Array.map
             (fun (cell, result, wall_ms) ->
               ignore (Manifest.write ~dir:o.out result.Plan.manifest);
               Report.cell_of_run ~cell ~result ~wall_ms)
             results)
      in
      let summary =
        Report.make ~matrix_seed:o.seed ~cardinality:Matrix.cardinality cell_results
      in
      let failed = List.filter (fun c -> not c.Report.passed) summary.Report.cells in
      List.iter
        (fun c ->
          Printf.printf "FAIL %s\n" c.Report.name;
          List.iter
            (fun k ->
              if not k.Plan.ok then Printf.printf "  %s: %s\n" k.Plan.label k.Plan.detail)
            c.Report.checks)
        failed;
      Printf.printf "%d/%d cell(s) passed in %.1fs (manifests in %s)\n"
        (List.length summary.Report.cells - List.length failed)
        (List.length summary.Report.cells)
        (Unix.gettimeofday () -. t0)
        o.out;
      let regressions = finish o summary in
      if failed <> [] || regressions > 0 then exit 1
  end
