(* Compare run manifests against checked-in baselines — the decision
   logic behind the bench-regression and golden-experiments CI jobs,
   kept in the repo so it is testable and usable locally.

   Usage:
     manifest_check bench  BASELINE.json CANDIDATE.json [--max-slowdown 2.0]
     manifest_check golden GOLDEN.json   CANDIDATE.json [--counters k1,k2,...]
     manifest_check serve  REFERENCE.json CANDIDATE.json
     manifest_check matrix SUMMARY.json  [--cells N]

   `bench` enforces the perf/correctness contract: every "checksum"
   counter of the baseline must match the candidate exactly, and every
   throughput metric — "replicas_per_sec/<jobs>" or any "rate/..." —
   may not be more than --max-slowdown times slower (faster is always
   fine — baselines only ratchet by being regenerated and committed).

   `golden` enforces determinism end to end: the named counters (default:
   all counters recorded in the golden manifest) must match exactly, as
   must name, seed and scale.  Timings are ignored — they are the
   machine's business, not the algorithm's.

   `serve` enforces the service layer's replay contract: both manifests
   must be kind:"serve" (written by `stratify_serve` / `Serve.manifest`,
   pure functions of the request script), and they must agree exactly —
   name, seed, scale, every counter (including the response checksum)
   in both directions, and every metric bit for bit.  This is what the
   serve-suite CI job runs on its double-run and stop/resume pairs.

   `matrix` validates an aggregated matrix-summary.json: the schema must
   parse, the recorded cardinality must equal the generator's compiled-in
   cardinality, the cell count must equal the cardinality (a merged full
   run left nothing behind — override the expected count with --cells N
   for deliberately partial runs), cell names must be unique and agree
   with their recorded axes, and per-cell seeds must match the
   generator's name-keyed derivation from the matrix seed. *)

module M = Stratify_obs.Run_manifest

let failures = ref 0

let fail fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s\n" s)
    fmt

let ok fmt = Printf.ksprintf (fun s -> Printf.printf "  ok %s\n" s) fmt

let check_bench ~max_slowdown baseline candidate =
  List.iter
    (fun (name, expected) ->
      if String.length name >= 8 && String.sub name 0 8 = "checksum" || name = "bench.checksum"
      then
        match M.counter candidate name with
        | Some got when got = expected -> ok "counter %s = %d" name got
        | Some got -> fail "counter %s: baseline %d, candidate %d" name expected got
        | None -> fail "counter %s missing from candidate" name)
    baseline.M.counters;
  List.iter
    (fun (name, base_rate) ->
      let is_rate =
        (String.length name >= 16 && String.sub name 0 16 = "replicas_per_sec")
        || (String.length name >= 5 && String.sub name 0 5 = "rate/")
      in
      if is_rate then
        match M.metric candidate name with
        | None -> fail "metric %s missing from candidate" name
        | Some rate when rate *. max_slowdown < base_rate ->
            fail "metric %s: %.2f is over %.1fx slower than baseline %.2f" name rate max_slowdown
              base_rate
        | Some rate -> ok "metric %s: %.2f vs baseline %.2f" name rate base_rate;
      (* "speedup/..." metrics are dimensionless ratios of two rates
         measured in the same run (e.g. calendar-queue events/sec over
         binary-heap events/sec in bench.des), so machine noise largely
         cancels and they get a much tighter band than raw rates: the
         candidate may not fall below baseline/1.25.  Like rates, they
         only ratchet up by regenerating the baseline. *)
      let speedup_tolerance = 1.25 in
      if String.length name >= 8 && String.sub name 0 8 = "speedup/" then
        match M.metric candidate name with
        | None -> fail "metric %s missing from candidate" name
        | Some s when s *. speedup_tolerance < base_rate ->
            fail "metric %s: %.2fx is below baseline %.2fx (tolerance /%.2f)" name s base_rate
              speedup_tolerance
        | Some s -> ok "metric %s: %.2fx vs baseline %.2fx" name s base_rate)
    baseline.M.metrics;
  (* Profile rows, when the baseline has them: per-kernel wall time per
     op may not regress past --max-slowdown, and a kernel the baseline
     records as allocation-free (the zero-alloc discipline, DESIGN.md
     §13) must stay allocation-free — minor words per op is a ratchet,
     not a tolerance. *)
  let zero_alloc_limit = 0.5 (* minor words per op that still counts as "zero" *) in
  List.iter
    (fun (b : Stratify_obs.Profile.entry) ->
      match M.profile_row candidate b.kernel with
      | None -> fail "profile kernel %s missing from candidate" b.kernel
      | Some c ->
          if b.ops > 0 && c.ops > 0 then begin
            let base_per_op = b.wall_s /. float_of_int b.ops
            and cand_per_op = c.wall_s /. float_of_int c.ops in
            if base_per_op > 0. && cand_per_op > base_per_op *. max_slowdown then
              fail "profile %s: %.3e s/op is over %.1fx slower than baseline %.3e" b.kernel
                cand_per_op max_slowdown base_per_op
            else ok "profile %s: %.3e s/op vs baseline %.3e" b.kernel cand_per_op base_per_op;
            let base_alloc = b.minor_words /. float_of_int b.ops
            and cand_alloc = c.minor_words /. float_of_int c.ops in
            if base_alloc <= zero_alloc_limit && cand_alloc > zero_alloc_limit then
              fail "profile %s: %.2f minor words/op, baseline is allocation-free (%.2f)"
                b.kernel cand_alloc base_alloc
            else ok "profile %s: %.2f minor words/op" b.kernel cand_alloc
          end)
    baseline.M.profile

let check_golden ~counters golden candidate =
  if golden.M.name <> candidate.M.name then
    fail "experiment name: golden %s, candidate %s" golden.M.name candidate.M.name;
  if golden.M.seed <> candidate.M.seed then
    fail "seed: golden %d, candidate %d" golden.M.seed candidate.M.seed;
  if golden.M.scale <> candidate.M.scale then
    fail "scale: golden %g, candidate %g" golden.M.scale candidate.M.scale;
  let keys =
    match counters with Some ks -> ks | None -> List.map fst golden.M.counters
  in
  List.iter
    (fun key ->
      match (M.counter golden key, M.counter candidate key) with
      | Some g, Some c when g = c -> ok "counter %s = %d" key g
      | Some g, Some c -> fail "counter %s: golden %d, candidate %d" key g c
      | Some _, None -> fail "counter %s missing from candidate" key
      | None, _ -> fail "counter %s missing from golden" key)
    keys

(* Two serve manifests of the same script must be indistinguishable: the
   layer's whole claim is that a run is a pure function of its script,
   so replay divergence anywhere — a counter present on one side only,
   a metric off in the last bit — is a determinism bug, never noise. *)
let check_serve reference candidate =
  if reference.M.kind <> "serve" then
    fail "reference kind %S, expected \"serve\"" reference.M.kind;
  if candidate.M.kind <> "serve" then fail "candidate kind %S, expected \"serve\"" candidate.M.kind;
  if reference.M.name <> candidate.M.name then
    fail "script name: reference %s, candidate %s" reference.M.name candidate.M.name;
  if reference.M.seed <> candidate.M.seed then
    fail "seed: reference %d, candidate %d" reference.M.seed candidate.M.seed;
  if reference.M.scale <> candidate.M.scale then
    fail "scale: reference %g, candidate %g" reference.M.scale candidate.M.scale;
  List.iter
    (fun (key, r) ->
      match M.counter candidate key with
      | Some c when c = r -> ok "counter %s = %d" key r
      | Some c -> fail "counter %s: reference %d, candidate %d" key r c
      | None -> fail "counter %s missing from candidate" key)
    reference.M.counters;
  List.iter
    (fun (key, _) ->
      if M.counter reference key = None then fail "counter %s missing from reference" key)
    candidate.M.counters;
  List.iter
    (fun (key, r) ->
      match M.metric candidate key with
      | Some c when Int64.bits_of_float c = Int64.bits_of_float r -> ok "metric %s = %g" key r
      | Some c -> fail "metric %s: reference %g, candidate %g" key r c
      | None -> fail "metric %s missing from candidate" key)
    reference.M.metrics;
  List.iter
    (fun (key, _) ->
      if M.metric reference key = None then fail "metric %s missing from reference" key)
    candidate.M.metrics

module Matrix = Stratify_net_plan.Matrix
module Report = Stratify_cli.Matrix_report

let check_matrix ~expected_cells path =
  let summary = Report.read path in
  let cells = summary.Report.cells in
  if summary.Report.cardinality <> Matrix.cardinality then
    fail "cardinality: summary records %d, generator produces %d" summary.Report.cardinality
      Matrix.cardinality
  else ok "cardinality %d matches the generator" Matrix.cardinality;
  let expected = match expected_cells with Some n -> n | None -> Matrix.cardinality in
  let count = List.length cells in
  if count <> expected then fail "cell count: %d, expected %d" count expected
  else ok "cell count %d" count;
  (* Report.of_json already rejects duplicate names; re-derive the axis
     name and seed per cell so a hand-edited summary cannot drift. *)
  List.iter
    (fun c ->
      let from_axes =
        List.map
          (fun k -> match List.assoc_opt k c.Report.axes with Some v -> v | None -> "?")
          [ "workload"; "backend"; "scheduler"; "size"; "fault" ]
      in
      let derived = String.concat "-" from_axes in
      if derived <> c.Report.name then
        fail "cell %s: axes spell %S" c.Report.name derived;
      let seed = Matrix.cell_seed ~matrix_seed:summary.Report.matrix_seed ~name:c.Report.name in
      if seed <> c.Report.seed then
        fail "cell %s: seed %d, generator derives %d" c.Report.name c.Report.seed seed)
    cells;
  ok "%d cell(s) named and seeded consistently" count

let usage () =
  prerr_endline
    "usage: manifest_check bench BASELINE CANDIDATE [--max-slowdown X]\n\
    \       manifest_check golden GOLDEN CANDIDATE [--counters k1,k2,...]\n\
    \       manifest_check serve REFERENCE CANDIDATE\n\
    \       manifest_check matrix SUMMARY [--cells N]";
  exit 2

let () =
  let argv = Array.to_list Sys.argv in
  (* Flags may appear anywhere after the mode: split them out first. *)
  let rec split_flags = function
    | [] -> ([], [])
    | k :: v :: rest when String.length k >= 2 && String.sub k 0 2 = "--" ->
        let flags, pos = split_flags rest in
        ((k, v) :: flags, pos)
    | k :: [] when String.length k >= 2 && String.sub k 0 2 = "--" -> usage ()
    | p :: rest ->
        let flags, pos = split_flags rest in
        (flags, p :: pos)
  in
  let opt key flags = List.assoc_opt key flags in
  match argv with
  | _ :: "matrix" :: rest -> (
      let flags, positional = split_flags rest in
      match positional with
      | [ path ] ->
          Printf.printf "matrix: %s\n" path;
          let expected_cells = Option.map int_of_string (opt "--cells" flags) in
          check_matrix ~expected_cells path;
          if !failures > 0 then begin
            Printf.printf "%d check(s) failed\n" !failures;
            exit 1
          end
          else print_endline "all checks passed"
      | _ -> usage ())
  | _ :: mode :: rest -> (
      let rest, positional = split_flags rest in
      match positional with
      | [ base_path; cand_path ] -> (
      let baseline = M.read base_path and candidate = M.read cand_path in
      Printf.printf "%s: %s vs %s\n" mode base_path cand_path;
          (match mode with
          | "bench" ->
              let max_slowdown =
                match opt "--max-slowdown" rest with
                | Some s -> float_of_string s
                | None -> 2.0
              in
              check_bench ~max_slowdown baseline candidate
          | "golden" ->
              let counters =
                Option.map (String.split_on_char ',') (opt "--counters" rest)
              in
              check_golden ~counters baseline candidate
          | "serve" -> check_serve baseline candidate
          | _ -> usage ());
          if !failures > 0 then begin
            Printf.printf "%d check(s) failed\n" !failures;
            exit 1
          end
          else print_endline "all checks passed")
      | _ -> usage ())
  | _ -> usage ()
