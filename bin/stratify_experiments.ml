(* Command-line driver regenerating every table and figure of the paper.

   Usage:
     stratify_experiments all
     stratify_experiments fig8 --scale 0.5 --csv results/
     stratify_experiments list *)

open Cmdliner
module E = Stratify_cli.Experiments

let seed_arg =
  let doc = "PRNG seed; runs are bit-for-bit reproducible for a given seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg =
  let doc =
    "Workload scale in (0, 1]: 1.0 reproduces the paper's population sizes; smaller values \
     shrink populations and replicate counts proportionally for quick smoke runs."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"SCALE" ~doc)

let csv_arg =
  let doc = "Directory to write raw results as CSV (created if missing)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the Monte-Carlo-heavy experiments (fig1, table1, fig6, fig9, scaling). \
     Results are bit-identical for any value, including 1; defaults to the machine's \
     recommended domain count."
  in
  Arg.(
    value
    & opt int (Stratify_exec.Exec.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"JOBS" ~doc)

let n_arg =
  let doc =
    "Override the population size of the complete-acceptance-graph experiments (fig4, table1, \
     fig6), bypassing --scale for the population.  These experiments use the implicit complete \
     backend, so e.g. --n 100000 needs O(n) memory, not O(n^2)."
  in
  Arg.(value & opt (some int) None & info [ "n"; "num-peers" ] ~docv:"N" ~doc)

let scheduler_arg =
  let doc =
    "Convergence scheduler for the dynamics experiments (fig1, fig2, fig3, scaling, \
     strategies): 'random' polls a uniform peer per step (the paper's setting, default); \
     'worklist' drains a dirty queue of active candidates seeded through the rewire hook — \
     the reached stable configurations are identical (Theorem 1), with far fewer wasted \
     initiative attempts."
  in
  Arg.(
    value
    & opt (enum [ ("random", Stratify_core.Scheduler.Random_poll);
                  ("worklist", Stratify_core.Scheduler.Worklist) ])
        Stratify_core.Scheduler.Random_poll
    & info [ "scheduler" ] ~docv:"POLICY" ~doc)

let bands_arg =
  let doc =
    "Rank bands for the complete-acceptance-graph matchings (fig4, table1, fig6, scaling): the \
     population splits into BANDS overlapping rank intervals solved independently on the --jobs \
     domain pool, with a deterministic worklist fixup reconciling the boundaries.  The result is \
     bit-identical for every band count (Theorem 1's uniqueness); more bands means more \
     parallelism at 10^6-10^7 peers."
  in
  Arg.(value & opt int 1 & info [ "bands" ] ~docv:"BANDS" ~doc)

let band_overlap_arg =
  let doc =
    "Extension width of each rank band, in ranks.  Defaults to the concentration bound of the \
     paper's Section 4 (~(3/4)*b0 padded by one cluster width).  Any value >= 0 yields the same \
     matching; smaller overlaps only shift work into the boundary fixup."
  in
  Arg.(value & opt (some int) None & info [ "band-overlap" ] ~docv:"RANKS" ~doc)

let manifest_arg =
  let doc =
    "Directory to write one JSON run manifest per experiment (created if missing): seed, scale, \
     jobs, git describe, per-phase wall/CPU timings, and the step / active-initiative / rewire / \
     chunk counter totals.  Enables the stratify.obs probes for the run; counter totals are \
     identical for every --jobs value."
  in
  Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"DIR" ~doc)

let profile_phases_arg =
  let doc =
    "Record a per-kernel profile section in the run manifests (requires --manifest): wall time, \
     entry and operation counts, and GC allocation deltas (minor/major/promoted words) for the \
     instrumented matching kernels (greedy build, cluster-cut scan, band solves, stitch, \
     fixup).  Purely additive — without this flag the manifests are byte-identical to previous \
     versions."
  in
  Arg.(value & flag & info [ "profile-phases" ] ~doc)

let queue_arg =
  let doc =
    "DES event-queue backend for every engine the run creates: 'heap' (binary heap, the \
     default), 'calendar' (O(1) amortized calendar queue, best for near-uniform latency \
     spreads) or 'ladder' (ladder queue, robust to skewed/bursty schedules).  All backends pop \
     events in the same total (time, seq) order, so every output — reports, CSVs, manifests — \
     is byte-identical across backends; only events/sec changes (measured by bench.des)."
  in
  Arg.(
    value
    & opt
        (enum
           (List.map
              (fun b -> (Stratify_des.Engine.backend_name b, b))
              Stratify_des.Engine.backends))
        Stratify_des.Engine.Heap
    & info [ "queue" ] ~docv:"BACKEND" ~doc)

let context seed scale csv_dir jobs manifest_dir n_override scheduler bands band_overlap
    profile_phases queue =
  let ctx =
    {
      E.seed;
      scale;
      csv_dir;
      jobs;
      manifest_dir;
      n_override;
      scheduler;
      bands;
      band_overlap;
      profile_phases;
      queue;
    }
  in
  (* Same checks (and messages) as the library entry point. *)
  match E.validate_context ctx with
  | () -> `Ok ctx
  | exception Invalid_argument msg -> `Error (false, msg)

let run_experiment entry seed scale csv_dir jobs manifest_dir n_override scheduler bands
    band_overlap profile_phases queue =
  match
    context seed scale csv_dir jobs manifest_dir n_override scheduler bands band_overlap
      profile_phases queue
  with
  | `Error _ as e -> e
  | `Ok ctx ->
      E.run_named ctx entry;
      `Ok ()

let experiment_cmd ((name, description, _) as entry) =
  let doc = Printf.sprintf "Regenerate %s of the paper (%s)." name description in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      ret
        (const (run_experiment entry) $ seed_arg $ scale_arg $ csv_arg $ jobs_arg $ manifest_arg
       $ n_arg $ scheduler_arg $ bands_arg $ band_overlap_arg $ profile_phases_arg $ queue_arg))

let all_cmd =
  let doc = "Run every experiment in sequence." in
  let run seed scale csv_dir jobs manifest_dir n_override scheduler bands band_overlap
      profile_phases queue =
    match
      context seed scale csv_dir jobs manifest_dir n_override scheduler bands band_overlap
        profile_phases queue
    with
    | `Error _ as e -> e
    | `Ok ctx ->
        List.iter (E.run_named ctx) E.all;
        `Ok ()
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      ret
        (const run $ seed_arg $ scale_arg $ csv_arg $ jobs_arg $ manifest_arg $ n_arg
       $ scheduler_arg $ bands_arg $ band_overlap_arg $ profile_phases_arg $ queue_arg))

let list_cmd =
  let doc = "List available experiments." in
  let run () =
    List.iter (fun (name, description, _) -> Printf.printf "%-8s %s\n" name description) E.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let main =
  let doc =
    "Reproduction experiments for 'Stratification in P2P Networks - Application to BitTorrent' \
     (Gai, Mathieu, Reynier & de Montgolfier, ICDCS 2007)."
  in
  let info = Cmd.info "stratify_experiments" ~version:"1.0.0" ~doc in
  Cmd.group info (all_cmd :: list_cmd :: List.map experiment_cmd E.all)

let () = exit (Cmd.eval main)
