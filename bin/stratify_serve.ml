(* The request-driven service frontend (see lib/serve/serve.mli).

   Script mode:
     stratify_serve [--out DIR] [--queue BACKEND] SCRIPT.serve
       run the script to its horizon and write the kind:"serve" run
       manifest to DIR (default results/manifests/serve) as
       <name>-<seed>.json.
     stratify_serve --stop-at T --snapshot SNAP.json SCRIPT.serve
       run to simulated time T, serialize the complete world to
       SNAP.json and exit without a manifest.
     stratify_serve --resume SNAP.json [--out DIR] [--queue BACKEND]
       restore the world (the script travels inside the snapshot) and
       run on to the horizon; the manifest is byte-identical to the
       uninterrupted run's — for any --queue on either side, which the
       serve-suite CI job pins.

   Stdio mode:
     stratify_serve --stdio SCRIPT.serve
       build the world (scripted requests still fire at their times as
       the clock advances) and read commands from stdin:
         announce <peer> <swarm> [want] | join <peer> <swarm>
         leave <peer> <swarm> | scrape <swarm> | stats
         tick [K]          advance K simulated seconds (default 1)
         snapshot PATH     serialize the world
         quit
       Request errors (unknown swarm, peer out of range, bad syntax)
       print "ERR ..." and the loop continues. *)

module Engine = Stratify_des.Engine
module Request = Stratify_serve.Request
module Serve = Stratify_serve.Serve
module Manifest = Stratify_obs.Run_manifest

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path s =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let usage () =
  prerr_endline
    "usage: stratify_serve [--out DIR] [--queue BACKEND] [--stop-at T \
     --snapshot SNAP] [--resume SNAP] [--stdio] [SCRIPT.serve]";
  exit 2

let stdio_loop t =
  let finished = ref false in
  (try
     while not !finished do
       match In_channel.input_line stdin with
       | None -> finished := true
       | Some line -> (
           let words =
             String.split_on_char ' ' (String.trim line)
             |> List.filter (fun w -> w <> "")
           in
           match words with
           | [] -> ()
           | [ "quit" ] | [ "exit" ] -> finished := true
           | "tick" :: rest -> (
               match rest with
               | [] ->
                   Serve.run_to t (Serve.now t +. 1.);
                   Printf.printf "OK tick now %g\n%!" (Serve.now t)
               | [ k ] -> (
                   match int_of_string_opt k with
                   | Some k when k >= 1 ->
                       Serve.run_to t (Serve.now t +. float_of_int k);
                       Printf.printf "OK tick now %g\n%!" (Serve.now t)
                   | _ -> Printf.printf "ERR tick: bad count %S\n%!" k)
               | _ -> Printf.printf "ERR tick: usage: tick [K]\n%!")
           | [ "snapshot"; path ] ->
               write_file path (Serve.snapshot_string t);
               Printf.printf "OK snapshot %s\n%!" path
           | _ -> (
               try Printf.printf "%s\n%!" (Serve.handle t (Request.of_line line))
               with Invalid_argument msg -> Printf.printf "ERR %s\n%!" msg))
     done
   with Invalid_argument msg ->
     (* an error outside request handling (e.g. the engine) is fatal *)
     Printf.printf "ERR %s\n%!" msg);
  ()

let () =
  let out = ref "results/manifests/serve" in
  let stop_at = ref None in
  let snapshot_path = ref None in
  let resume = ref None in
  let stdio = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--out" :: dir :: rest ->
        out := dir;
        parse rest
    | "--queue" :: name :: rest -> (
        match Engine.backend_of_string name with
        | Some b ->
            Engine.set_default_backend b;
            parse rest
        | None ->
            Printf.eprintf
              "stratify_serve: unknown queue backend %S (heap | calendar | ladder)\n"
              name;
            exit 2)
    | "--stop-at" :: time :: rest -> (
        match float_of_string_opt time with
        | Some x when x > 0. ->
            stop_at := Some x;
            parse rest
        | _ ->
            Printf.eprintf "stratify_serve: bad --stop-at time %S\n" time;
            exit 2)
    | "--snapshot" :: path :: rest ->
        snapshot_path := Some path;
        parse rest
    | "--resume" :: path :: rest ->
        resume := Some path;
        parse rest
    | "--stdio" :: rest ->
        stdio := true;
        parse rest
    | ("--out" | "--stop-at" | "--snapshot" | "--resume") :: [] -> usage ()
    | "--queue" :: [] -> usage ()
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let t =
    match (!resume, List.rev !paths) with
    | Some snap, [] ->
        let ic = open_in snap in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        Serve.restore_string s
    | None, [ script ] -> Serve.create (Request.load script)
    | Some _, _ :: _ ->
        prerr_endline "stratify_serve: --resume takes no script (it travels inside the snapshot)";
        exit 2
    | None, _ -> usage ()
  in
  if !stdio then begin
    stdio_loop t;
    exit 0
  end;
  (match (!stop_at, !snapshot_path) with
  | Some _, None | None, Some _ ->
      prerr_endline "stratify_serve: --stop-at and --snapshot go together";
      exit 2
  | _ -> ());
  match !stop_at with
  | Some time ->
      Serve.run_to t time;
      let path = Option.get !snapshot_path in
      write_file path (Serve.snapshot_string t);
      Printf.printf "%s (seed %d): stopped at %g, snapshot %s\n"
        (Serve.script t).Request.name (Serve.script t).Request.seed time path
  | None ->
      Serve.run_script t;
      let m = Serve.manifest t in
      let written = Manifest.write ~dir:!out m in
      Printf.printf
        "%s (seed %d): %d requests, %d ticks, checksum %d\n  manifest %s\n"
        (Serve.script t).Request.name (Serve.script t).Request.seed
        (Serve.requests_handled t) (Serve.ticks t) (Serve.checksum t) written
